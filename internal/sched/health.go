package sched

import (
	"errors"
	"fmt"

	"repro/internal/obs"
)

// HealthState is a platform's position in the failure lifecycle. Healthy
// and Degraded platforms accept placements (Degraded ones with a
// bound-padding penalty, Config.DegradedPenalty); Quarantined and Down
// platforms are excluded from every candidate set. The transitions are
// driven by the scheduler's failure events:
//
//	Fail     → Down         (residents orphaned)
//	Degrade  → Degraded     (flaky but alive; residents stay)
//	Recover  → half-open probation (from Down/Quarantined) or Healthy
//	           (from Degraded)
//	breaker  → Quarantined  (observed miss rate over the window crossed
//	           the threshold, or a miss during probation)
type HealthState uint8

const (
	// Healthy platforms take placements at full capacity, unpenalized.
	Healthy HealthState = iota
	// Degraded platforms take placements with the feasibility score
	// inflated by Config.DegradedPenalty — a flaky platform has to clear
	// the deadline with padding to spare. Half-open probation is a
	// Degraded state with a colocation cap of one trial job.
	Degraded
	// Quarantined platforms are excluded from placement: the circuit
	// breaker tripped (or an operator quarantined them). Residents keep
	// running; completions are still accepted.
	Quarantined
	// Down platforms failed: their residents were orphaned and the
	// platform takes no placements until recovered.
	Down
)

// String implements fmt.Stringer.
func (h HealthState) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Quarantined:
		return "quarantined"
	case Down:
		return "down"
	}
	return fmt.Sprintf("health(%d)", uint8(h))
}

// Placeable reports whether a platform in this state may receive jobs.
func (h HealthState) Placeable() bool { return h == Healthy || h == Degraded }

// ErrPlatformOutOfRange is returned by the failure-event methods for a
// platform index outside [0, NumPlatforms).
var ErrPlatformOutOfRange = errors.New("sched: platform index out of range")

// ErrPlatformUnavailable is returned by Degrade for a platform that is
// Down or Quarantined (recover it first).
var ErrPlatformUnavailable = errors.New("sched: platform unavailable")

// Orphan is one resident lost to a platform failure: the job's retired ID
// (Complete on it returns ErrJobCompleted) and the Job itself, so callers
// can funnel it back into placement as high-priority rescheduling work.
type Orphan struct {
	ID  JobID
	Job Job
}

// BreakerConfig tunes the per-platform circuit breaker: a sliding window
// of observed outcomes (reported via CompleteOutcome) trips the platform
// into Quarantined when the window miss rate crosses Threshold. Recover
// re-admits the platform half-open: one trial job at a time, with
// Probation consecutive on-deadline completions required to close back to
// Healthy, and any miss during probation re-tripping the quarantine.
type BreakerConfig struct {
	// Window is the number of recent outcomes tracked per platform
	// (default 20).
	Window int
	// Threshold trips the breaker when misses/outcomes over the window
	// reaches it (with at least MinSamples outcomes). 0 disables
	// automatic trips; probation semantics still apply after Recover.
	Threshold float64
	// MinSamples is the minimum outcomes in the window before a trip is
	// considered (default Window/2, at least 1).
	MinSamples int
	// Probation is the number of consecutive on-deadline completions a
	// half-open platform needs to close back to Healthy (default 3).
	Probation int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 20
	}
	if c.MinSamples <= 0 {
		c.MinSamples = c.Window / 2
		if c.MinSamples < 1 {
			c.MinSamples = 1
		}
	}
	if c.Probation <= 0 {
		c.Probation = 3
	}
	return c
}

// healthCore is one platform's failure-lifecycle state plus its breaker
// window. It is the transition logic shared by the mutex-guarded scheduler
// (platformHealth) and the lock-free slot store (platformSlots): both arms
// drive the identical state machine, they differ only in how mutations are
// published. The outcome ring is allocated lazily on first use.
type healthCore struct {
	state     HealthState
	probation bool // half-open: state==Degraded, colocation capped at 1
	probLeft  int  // consecutive successes still needed to close

	outcomes     []bool // ring of recent outcomes, true = missed deadline
	next, filled int
	misses       int
}

// platformHealth is one platform's failure-lifecycle state, guarded by the
// scheduler mutex.
type platformHealth struct {
	healthCore
}

// fail transitions to Down, reporting false when already Down (a no-op).
func (h *healthCore) fail() bool {
	if h.state == Down {
		return false
	}
	h.state = Down
	h.probation = false
	h.resetWindow()
	return true
}

// degrade marks the platform Degraded. Applied is false for the no-op
// (already plainly Degraded); an explicit Degrade during probation converts
// the half-open trial into a plain degraded platform (full capacity,
// padded). Callers must reject Down/Quarantined platforms first.
func (h *healthCore) degrade() (applied bool) {
	switch h.state {
	case Healthy:
		h.state = Degraded
		return true
	case Degraded:
		if h.probation {
			h.probation = false
			return true
		}
	}
	return false
}

// recover advances toward Healthy: Down/Quarantined re-enter half-open
// probation (readmitted), Degraded closes to Healthy (closedProbation when
// it was a half-open trial). Callers skip the Healthy no-op.
func (h *healthCore) recover(probation int) (readmitted, closedProbation bool) {
	switch h.state {
	case Down, Quarantined:
		h.state = Degraded
		h.probation = true
		h.probLeft = probation
		h.resetWindow()
		return true, false
	case Degraded:
		closedProbation = h.probation
		h.state = Healthy
		h.probation = false
		h.resetWindow()
	}
	return false, closedProbation
}

// noteOutcome feeds one observed execution outcome through the probation
// and breaker-window state, reporting a quarantine trip (threshold
// crossing, or a miss during probation) or a probation closing healthy.
func (h *healthCore) noteOutcome(miss bool, br BreakerConfig) (tripped, closed bool) {
	if h.state == Down || h.state == Quarantined {
		// Stragglers completing on a failed/quarantined platform carry no
		// signal about its future admission.
		return false, false
	}
	if h.probation {
		if miss {
			h.state = Quarantined
			h.probation = false
			h.resetWindow()
			return true, false
		}
		h.probLeft--
		if h.probLeft <= 0 {
			h.state = Healthy
			h.probation = false
			h.resetWindow()
			return false, true
		}
		return false, false
	}
	if br.Threshold <= 0 {
		return false, false
	}
	if h.outcomes == nil {
		h.outcomes = make([]bool, br.Window)
	}
	if h.filled == len(h.outcomes) {
		if h.outcomes[h.next] {
			h.misses--
		}
	} else {
		h.filled++
	}
	h.outcomes[h.next] = miss
	if miss {
		h.misses++
	}
	h.next = (h.next + 1) % len(h.outcomes)
	if h.filled >= br.MinSamples &&
		float64(h.misses) >= br.Threshold*float64(h.filled) {
		h.state = Quarantined
		h.resetWindow()
		return true, false
	}
	return false, false
}

// FailureStats counts the scheduler's failure-lifecycle events since
// construction.
type FailureStats struct {
	// Fails/Degrades/Recovers count applied failure events (no-ops —
	// failing a Down platform, recovering a Healthy one — are excluded).
	Fails    uint64
	Degrades uint64
	Recovers uint64
	// Orphaned counts residents displaced by Fail.
	Orphaned uint64
	// Trips counts quarantine entries: breaker threshold crossings plus
	// re-trips from a miss during probation. Readmissions counts half-open
	// entries (Recover on a Down/Quarantined platform); Closes counts
	// probations completing back to Healthy.
	Trips        uint64
	Readmissions uint64
	Closes       uint64
}

func (s *Scheduler) checkPlatform(p int) error {
	if p < 0 || p >= s.cfg.NumPlatforms {
		return fmt.Errorf("%w: %d not in [0,%d)", ErrPlatformOutOfRange, p, s.cfg.NumPlatforms)
	}
	return nil
}

// Fail marks platform p Down and orphans its residents: every resident
// job's ID is retired (Complete returns ErrJobCompleted) and returned with
// its Job so the caller can reschedule it — the job-conservation contract
// is that each orphan is returned exactly once and nothing else about the
// cluster changes. Failing an already-Down platform is a no-op.
func (s *Scheduler) Fail(p int) ([]Orphan, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkPlatform(p); err != nil {
		return nil, err
	}
	h := &s.healths[p]
	if !h.fail() {
		return nil, nil
	}
	s.stats.Fails++
	s.bumpSlotLocked(p)
	rs := s.residents[p]
	if len(rs) == 0 {
		return nil, nil
	}
	orphans := make([]Orphan, len(rs))
	for i, r := range rs {
		orphans[i] = Orphan{ID: r.id, Job: r.job}
		delete(s.platformOf, r.id)
		if s.rec != nil {
			s.rec.Record(obs.Event{Kind: obs.EvOrphan, Job: uint64(r.id), ID: uint64(r.id),
				Platform: int32(p)})
		}
	}
	s.residents[p] = rs[:0]
	s.stats.Orphaned += uint64(len(orphans))
	return orphans, nil
}

// Degrade marks platform p Degraded: it keeps its residents and keeps
// accepting placements, but every candidate score is padded by
// Config.DegradedPenalty and strategies prefer healthy platforms at equal
// rank. Degrading a Down or Quarantined platform is an error (recover it
// first); degrading a Degraded platform is a no-op.
func (s *Scheduler) Degrade(p int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkPlatform(p); err != nil {
		return err
	}
	h := &s.healths[p]
	if h.state == Down || h.state == Quarantined {
		return fmt.Errorf("%w: platform %d is %s", ErrPlatformUnavailable, p, h.state)
	}
	if h.degrade() {
		s.stats.Degrades++
		s.bumpSlotLocked(p)
	}
	return nil
}

// Recover advances platform p toward Healthy: a Down or Quarantined
// platform re-enters half-open probation (Degraded, colocation capped at
// one trial job, Probation consecutive successes to close); a Degraded
// platform closes to Healthy. Recovering a Healthy platform is a no-op.
func (s *Scheduler) Recover(p int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkPlatform(p); err != nil {
		return err
	}
	h := &s.healths[p]
	if h.state == Healthy {
		return nil
	}
	readmitted, closed := h.recover(s.breaker.Probation)
	s.stats.Recovers++
	s.bumpSlotLocked(p)
	if readmitted {
		s.stats.Readmissions++
		if s.rec != nil {
			s.rec.Record(obs.Event{Kind: obs.EvReadmit, Platform: int32(p)})
		}
	}
	if closed {
		s.stats.Closes++
	}
	return nil
}

// Health returns platform p's current state (Healthy for out-of-range
// indices; validate with the event methods).
func (s *Scheduler) Health(p int) HealthState {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p < 0 || p >= len(s.healths) {
		return Healthy
	}
	return s.healths[p].state
}

// HealthSnapshot returns a copy of every platform's health state.
func (s *Scheduler) HealthSnapshot() []HealthState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]HealthState, len(s.healths))
	for p := range s.healths {
		out[p] = s.healths[p].state
	}
	return out
}

// Impaired returns the number of platforms not currently Healthy.
func (s *Scheduler) Impaired() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for p := range s.healths {
		if s.healths[p].state != Healthy {
			n++
		}
	}
	return n
}

// FailureStats returns the failure-lifecycle counters.
func (s *Scheduler) FailureStats() FailureStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// CompleteOutcome is Complete plus an outcome report for the circuit
// breaker: miss records whether the execution overran its deadline on the
// platform it ran on. The returned tripped flag reports whether this
// outcome tripped the platform into quarantine (threshold crossing, or a
// miss during probation) — callers drive re-admission from it.
func (s *Scheduler) CompleteOutcome(id JobID, miss bool) (tripped bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, err := s.completeLocked(id)
	if err != nil {
		return false, err
	}
	return s.noteOutcomeLocked(p, miss), nil
}

// noteOutcomeLocked feeds one observed execution outcome into platform p's
// breaker window and probation state, returning whether it tripped the
// platform into quarantine.
func (s *Scheduler) noteOutcomeLocked(p int, miss bool) bool {
	tripped, closed := s.healths[p].noteOutcome(miss, s.breaker)
	if tripped {
		s.stats.Trips++
	}
	if closed {
		s.stats.Closes++
	}
	if tripped || closed {
		// State transitions only — plain in-window outcomes change nothing a
		// cached score column depends on.
		s.bumpSlotLocked(p)
	}
	return tripped
}

func (h *healthCore) resetWindow() {
	h.next, h.filled, h.misses = 0, 0, 0
}

// colocCapLocked is platform p's effective colocation cap: one trial job
// during half-open probation, Config.MaxColocation otherwise.
func (s *Scheduler) colocCapLocked(p int) int {
	if s.healths[p].probation {
		return 1
	}
	return s.cfg.MaxColocation
}
