package sched

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// fakePred is a deterministic predictor for unit tests: runtime = base[p]
// * (1 + 0.5*len(interferers)), bound = estimate * 1.5.
type fakePred struct{ base []float64 }

func (f fakePred) EstimateSeconds(w, p int, ks []int) float64 {
	return f.base[p] * (1 + 0.5*float64(len(ks)))
}

func (f fakePred) BoundSeconds(w, p int, ks []int, eps float64) float64 {
	return f.EstimateSeconds(w, p, ks) * 1.5
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}, MeanPolicy{}, fakePred{}); err == nil {
		t.Fatal("accepted zero platforms")
	}
	s, err := New(Config{NumPlatforms: 2}, MeanPolicy{}, fakePred{base: []float64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.MaxColocation != 4 {
		t.Fatal("default max colocation wrong")
	}
}

func TestPlaceFeasibility(t *testing.T) {
	pred := fakePred{base: []float64{1.0, 5.0}}
	s, _ := New(Config{NumPlatforms: 2}, MeanPolicy{}, pred)
	// Deadline 2: only platform 0 feasible.
	a := s.Place(Job{Workload: 0, Deadline: 2})
	if !a.Placed() || a.Platform != 0 {
		t.Fatalf("placed on %d", a.Platform)
	}
	// Deadline 0.5: nothing feasible.
	a = s.Place(Job{Workload: 1, Deadline: 0.5})
	if a.Placed() {
		t.Fatal("placed infeasible job")
	}
}

func TestPlacePrefersLeastLoaded(t *testing.T) {
	pred := fakePred{base: []float64{1.0, 1.0}}
	s, _ := New(Config{NumPlatforms: 2}, MeanPolicy{}, pred)
	a1 := s.Place(Job{Workload: 0, Deadline: 10})
	a2 := s.Place(Job{Workload: 1, Deadline: 10})
	if a1.Platform == a2.Platform {
		t.Fatal("did not spread load")
	}
}

func TestPlaceRespectsColocationCap(t *testing.T) {
	pred := fakePred{base: []float64{1.0}}
	s, _ := New(Config{NumPlatforms: 1, MaxColocation: 2}, MeanPolicy{}, pred)
	if !s.Place(Job{Workload: 0, Deadline: 100}).Placed() {
		t.Fatal("first job unplaced")
	}
	if !s.Place(Job{Workload: 1, Deadline: 100}).Placed() {
		t.Fatal("second job unplaced")
	}
	if s.Place(Job{Workload: 2, Deadline: 100}).Placed() {
		t.Fatal("exceeded colocation cap")
	}
	if len(s.Residents(0)) != 2 {
		t.Fatal("resident bookkeeping wrong")
	}
}

func TestPlaceAccountsForInterference(t *testing.T) {
	// Platform runtime doubles with 2 residents; the third job's deadline
	// only fits an empty platform.
	pred := fakePred{base: []float64{1.0, 1.2}}
	s, _ := New(Config{NumPlatforms: 2}, MeanPolicy{}, pred)
	s.Place(Job{Workload: 0, Deadline: 10})
	s.Place(Job{Workload: 1, Deadline: 10})
	// both platforms have 1 resident; estimate = base*1.5
	a := s.Place(Job{Workload: 2, Deadline: 1.6})
	if !a.Placed() || a.Platform != 0 {
		t.Fatalf("expected platform 0, got %+v", a)
	}
}

func TestPolicies(t *testing.T) {
	pred := fakePred{base: []float64{2.0}}
	if MeanPolicy.Score(MeanPolicy{}, pred, Job{}, 0, nil) != 2.0 {
		t.Fatal("mean score")
	}
	if (BoundPolicy{Eps: 0.1}).Score(pred, Job{}, 0, nil) != 3.0 {
		t.Fatal("bound score")
	}
	if (PaddedMeanPolicy{Factor: 2}).Score(pred, Job{}, 0, nil) != 4.0 {
		t.Fatal("padded score")
	}
	for _, p := range []Policy{MeanPolicy{}, BoundPolicy{0.1}, PaddedMeanPolicy{1.5}} {
		if p.Name() == "" {
			t.Fatal("empty policy name")
		}
	}
}

// swapPred is a concurrency-safe Predictor whose per-platform speed table
// is swapped atomically — the same publication discipline as the snapshot-
// isolated Pitot facade. Score calls racing a swap see either the old or
// the new table, never a torn one.
type swapPred struct {
	base atomic.Pointer[[]float64]
}

func newSwapPred(base []float64) *swapPred {
	p := &swapPred{}
	p.base.Store(&base)
	return p
}

func (p *swapPred) EstimateSeconds(w, pl int, ks []int) float64 {
	return (*p.base.Load())[pl] * (1 + 0.5*float64(len(ks)))
}

func (p *swapPred) BoundSeconds(w, pl int, ks []int, eps float64) float64 {
	return p.EstimateSeconds(w, pl, ks) * 1.5
}

// Many schedulers sharing one concurrently-updated predictor must keep
// making deadline-consistent decisions: every placement's budget respects
// the job's deadline, and with one platform always an order of magnitude
// slower than any published table, tight-deadline jobs never land on it.
// Run under `go test -race`.
func TestConcurrentSchedulersSharedPredictor(t *testing.T) {
	fast, slow := 1.0, 50.0
	tableA := []float64{fast, slow, fast * 1.2}
	tableB := []float64{fast * 2, slow * 2, fast * 1.8}
	pred := newSwapPred(tableA)

	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				pred.base.Store(&tableB)
			} else {
				pred.base.Store(&tableA)
			}
		}
	}()

	const schedulers = 8
	var wg sync.WaitGroup
	for g := 0; g < schedulers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, pol := range []Policy{MeanPolicy{}, BoundPolicy{Eps: 0.1}} {
				s, err := New(Config{NumPlatforms: 3, MaxColocation: 2}, pol, pred)
				if err != nil {
					t.Error(err)
					return
				}
				// Deadline 20: feasible on the fast platforms under either
				// published table (max score 2*1.5*2 = 6), infeasible on the
				// slow platform under either (min score 50).
				for i := 0; i < 4; i++ {
					a := s.Place(Job{Workload: g*4 + i, Deadline: 20})
					if !a.Placed() {
						t.Errorf("scheduler %d job %d unplaced", g, i)
						return
					}
					if a.Platform == 1 {
						t.Errorf("scheduler %d placed on the slow platform (budget %.2f)", g, a.Budget)
						return
					}
					if a.Budget > 20 {
						t.Errorf("scheduler %d accepted budget %.2f over deadline", g, a.Budget)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	writer.Wait()
}

// noisyOracle returns base * lognormal noise; heavy enough that a mean
// estimate misses deadlines a conformal bound meets.
type noisyOracle struct {
	base  []float64
	sigma float64
	rng   *rand.Rand
}

func (o *noisyOracle) TrueSeconds(w, p int, ks []int) float64 {
	return o.base[p] * (1 + 0.5*float64(len(ks))) * math.Exp(o.sigma*o.rng.NormFloat64())
}

// calibratedPred mimics a predictor whose bound includes the noise
// quantile (as conformal calibration would produce).
type calibratedPred struct {
	base  []float64
	sigma float64
}

func (c calibratedPred) EstimateSeconds(w, p int, ks []int) float64 {
	return c.base[p] * (1 + 0.5*float64(len(ks)))
}

func (c calibratedPred) BoundSeconds(w, p int, ks []int, eps float64) float64 {
	// 1-eps quantile of the lognormal noise: exp(sigma * z_{1-eps}).
	z := 1.2816 // z_{0.90}
	if eps <= 0.05 {
		z = 1.6449
	}
	return c.EstimateSeconds(w, p, ks) * math.Exp(c.sigma*z)
}

func TestSimulateBoundPolicyMeetsDeadlines(t *testing.T) {
	const n = 6
	base := []float64{1, 1.1, 0.9, 1.2, 1.0, 0.95}
	pred := calibratedPred{base: base, sigma: 0.4}
	var jobs []Job
	for i := 0; i < 30; i++ {
		jobs = append(jobs, Job{Workload: i, Deadline: 2.2})
	}
	run := func(pol Policy) Outcome {
		s, _ := New(Config{NumPlatforms: n, MaxColocation: 4}, pol, pred)
		as := s.PlaceAll(jobs)
		oracle := &noisyOracle{base: base, sigma: 0.4, rng: rand.New(rand.NewSource(1))}
		return Simulate(pol.Name(), as, oracle, s.Residents, 20)
	}
	mean := run(MeanPolicy{})
	bound := run(BoundPolicy{Eps: 0.1})

	if mean.Placed == 0 || bound.Placed == 0 {
		t.Fatalf("no placements: %+v %+v", mean, bound)
	}
	// The mean policy accepts placements whose tail exceeds the deadline;
	// the bound policy's misses must be much rarer.
	if bound.MissRate >= mean.MissRate {
		t.Fatalf("bound policy miss rate %.3f not below mean policy %.3f",
			bound.MissRate, mean.MissRate)
	}
	t.Logf("mean: placed %d missRate %.3f | bound: placed %d missRate %.3f",
		mean.Placed, mean.MissRate, bound.Placed, bound.MissRate)
}

func TestSimulateCountsUnplaced(t *testing.T) {
	as := []Assignment{{Job: Job{Deadline: 1}, Platform: -1}}
	out := Simulate("x", as, nil, nil, 1)
	if out.Unplaced != 1 || out.Placed != 0 || out.MissRate != 0 || out.TotalExecutions != 0 {
		t.Fatalf("outcome %+v", out)
	}
}

// With a perfectly calibrated bound, the per-execution miss rate must stay
// near eps while the mean policy's rate is far above it.
func TestBoundPolicyMissRateNearEps(t *testing.T) {
	base := []float64{1, 1, 1, 1}
	const sigma = 0.4
	const eps = 0.1
	pred := calibratedPred{base: base, sigma: sigma}
	var jobs []Job
	for i := 0; i < 20; i++ {
		// Deadline exactly at the calibrated bound for an empty platform:
		// placements are feasible and the guarantee is tested at its edge.
		jobs = append(jobs, Job{Workload: i, Deadline: pred.BoundSeconds(i, 0, nil, eps) * 1.001})
	}
	s, _ := New(Config{NumPlatforms: 4, MaxColocation: 1}, BoundPolicy{Eps: eps}, pred)
	as := s.PlaceAll(jobs)
	oracle := &noisyOracle{base: base, sigma: sigma, rng: rand.New(rand.NewSource(3))}
	out := Simulate("bound", as, oracle, s.Residents, 200)
	if out.Placed != 4 { // MaxColocation 1 on 4 platforms
		t.Fatalf("placed %d", out.Placed)
	}
	if out.MissRate > eps+0.05 {
		t.Fatalf("miss rate %.3f well above eps %.2f", out.MissRate, eps)
	}
}
