// Package sched implements the edge-orchestration application that
// motivates the paper (§1): placing latency-sensitive workloads across a
// heterogeneous cluster using runtime predictions.
//
// A Scheduler assigns each arriving job to a platform using a pluggable
// Policy; the interesting policies consult a runtime predictor. The
// package also provides a simulation harness that replays a placement
// against the ground-truth runtime model of the synthetic cluster and
// scores deadline misses — this quantifies the paper's argument that
// calibrated bounds (not just mean estimates) are what an orchestrator
// needs to meet quality-of-service targets.
package sched

import (
	"fmt"
	"math"
)

// Job is one placement request.
type Job struct {
	// Workload index within the dataset.
	Workload int
	// Deadline in seconds for one execution of the workload.
	Deadline float64
}

// Predictor supplies runtime estimates for placement decisions. Both the
// Pitot facade and a ground-truth oracle satisfy it.
type Predictor interface {
	// EstimateSeconds returns the expected runtime of w on platform p with
	// the given co-located workloads.
	EstimateSeconds(w, p int, interferers []int) float64
	// BoundSeconds returns a runtime budget sufficient with probability
	// ≥ 1−eps, or +Inf if no valid bound exists.
	BoundSeconds(w, p int, interferers []int, eps float64) float64
}

// Assignment is the result of placing one job.
type Assignment struct {
	Job      Job
	Platform int     // -1 if unplaced
	Budget   float64 // the predicted value the decision was based on
}

// Placed reports whether the job found a platform.
func (a Assignment) Placed() bool { return a.Platform >= 0 }

// Policy ranks candidate platforms for a job. Score returns the predicted
// runtime metric used for feasibility (compared against the deadline) —
// lower is better; returning +Inf marks the platform infeasible.
type Policy interface {
	Name() string
	Score(pred Predictor, job Job, platform int, residents []int) float64
}

// MeanPolicy places on the expected runtime — the natural choice when only
// a point predictor is available. It systematically underestimates tail
// latency, which the simulation harness exposes.
type MeanPolicy struct{}

// Name implements Policy.
func (MeanPolicy) Name() string { return "mean" }

// Score implements Policy.
func (MeanPolicy) Score(pred Predictor, job Job, platform int, residents []int) float64 {
	return pred.EstimateSeconds(job.Workload, platform, residents)
}

// BoundPolicy places on the conformal (1−eps)-sufficient runtime bound,
// giving each placement a per-job probabilistic deadline guarantee.
type BoundPolicy struct{ Eps float64 }

// Name implements Policy.
func (p BoundPolicy) Name() string { return fmt.Sprintf("bound(eps=%.2f)", p.Eps) }

// Score implements Policy.
func (p BoundPolicy) Score(pred Predictor, job Job, platform int, residents []int) float64 {
	return pred.BoundSeconds(job.Workload, platform, residents, p.Eps)
}

// PaddedMeanPolicy is the common heuristic alternative: mean estimate
// inflated by a fixed safety factor. It has no calibration guarantee —
// too small on volatile platforms, wasteful on stable ones.
type PaddedMeanPolicy struct{ Factor float64 }

// Name implements Policy.
func (p PaddedMeanPolicy) Name() string { return fmt.Sprintf("mean*%.1f", p.Factor) }

// Score implements Policy.
func (p PaddedMeanPolicy) Score(pred Predictor, job Job, platform int, residents []int) float64 {
	return pred.EstimateSeconds(job.Workload, platform, residents) * p.Factor
}

// Config bounds the scheduler's search.
type Config struct {
	// NumPlatforms in the cluster.
	NumPlatforms int
	// MaxColocation is the maximum number of workloads per platform
	// (paper's dataset observes up to 4 simultaneous workloads).
	MaxColocation int
}

// Scheduler assigns jobs to platforms with a policy.
type Scheduler struct {
	cfg    Config
	policy Policy
	pred   Predictor

	residents [][]int // platform -> workloads currently placed
}

// New creates a scheduler.
func New(cfg Config, policy Policy, pred Predictor) (*Scheduler, error) {
	if cfg.NumPlatforms <= 0 {
		return nil, fmt.Errorf("sched: no platforms")
	}
	if cfg.MaxColocation <= 0 {
		cfg.MaxColocation = 4
	}
	return &Scheduler{
		cfg:       cfg,
		policy:    policy,
		pred:      pred,
		residents: make([][]int, cfg.NumPlatforms),
	}, nil
}

// Residents returns the workloads currently placed on platform p.
func (s *Scheduler) Residents(p int) []int {
	return append([]int(nil), s.residents[p]...)
}

// Place assigns one job: among feasible platforms (score ≤ deadline after
// accounting for the interference the job will experience from residents),
// it picks the least-loaded, breaking ties by the loosest score to keep
// fast platforms free for tight deadlines. Returns an unplaced Assignment
// when no platform is feasible.
func (s *Scheduler) Place(job Job) Assignment {
	best := Assignment{Job: job, Platform: -1, Budget: math.Inf(1)}
	bestLoad := math.MaxInt
	for p := 0; p < s.cfg.NumPlatforms; p++ {
		res := s.residents[p]
		if len(res)+1 > s.cfg.MaxColocation {
			continue
		}
		score := s.policy.Score(s.pred, job, p, res)
		if math.IsInf(score, 1) || score > job.Deadline {
			continue
		}
		load := len(res)
		if load < bestLoad || (load == bestLoad && score > best.Budget) {
			best = Assignment{Job: job, Platform: p, Budget: score}
			bestLoad = load
		}
	}
	if best.Placed() {
		s.residents[best.Platform] = append(s.residents[best.Platform], job.Workload)
	}
	return best
}

// PlaceAll places a batch of jobs in order.
func (s *Scheduler) PlaceAll(jobs []Job) []Assignment {
	out := make([]Assignment, len(jobs))
	for i, j := range jobs {
		out[i] = s.Place(j)
	}
	return out
}

// Oracle is a ground-truth Predictor used by the simulation harness (and
// as an upper bound in comparisons): it knows the true runtime
// distribution of the synthetic cluster.
type Oracle interface {
	// TrueSeconds draws one true runtime (with measurement noise) of w on
	// p given interferers.
	TrueSeconds(w, p int, interferers []int) float64
}

// Outcome scores a completed simulation.
type Outcome struct {
	Policy   string
	Placed   int
	Unplaced int
	// MissedExecutions / TotalExecutions count (job, trial) pairs whose
	// true runtime exceeded the deadline; MissRate is their ratio. This is
	// the per-execution quantity the conformal bound's ε controls.
	MissedExecutions int
	TotalExecutions  int
	MissRate         float64
	// AvgHeadroom is the mean (deadline - trueRuntime)/deadline over placed
	// executions: high headroom at equal miss rate means wasteful
	// overprovisioning.
	AvgHeadroom float64
}

// Simulate replays assignments against the ground truth: every placed
// job's true runtime (under the final co-location on its platform) is
// compared to its deadline, over `trials` repeated executions capturing
// runtime variance.
func Simulate(policyName string, assignments []Assignment, oracle Oracle,
	finalResidents func(p int) []int, trials int) Outcome {
	out := Outcome{Policy: policyName}
	if trials <= 0 {
		trials = 1
	}
	var headroom float64
	for _, a := range assignments {
		if !a.Placed() {
			out.Unplaced++
			continue
		}
		out.Placed++
		// Interferers: everyone else on the platform at the end.
		var ks []int
		for _, w := range finalResidents(a.Platform) {
			if w != a.Job.Workload {
				ks = append(ks, w)
			}
		}
		for tr := 0; tr < trials; tr++ {
			tt := oracle.TrueSeconds(a.Job.Workload, a.Platform, ks)
			out.TotalExecutions++
			if tt > a.Job.Deadline {
				out.MissedExecutions++
			}
			headroom += (a.Job.Deadline - tt) / a.Job.Deadline
		}
	}
	if out.TotalExecutions > 0 {
		out.MissRate = float64(out.MissedExecutions) / float64(out.TotalExecutions)
		out.AvgHeadroom = headroom / float64(out.TotalExecutions)
	}
	return out
}
