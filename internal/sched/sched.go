// Package sched is the edge-orchestration engine that motivates the paper
// (§1): placing latency-sensitive workloads across a heterogeneous cluster
// using calibrated runtime predictions.
//
// The engine is event-driven: jobs arrive (Place) and complete (Complete),
// so a platform's resident set — and therefore the interference every
// candidate placement must account for — changes over time. A Scheduler
// scores all candidate platforms for a job in one batched predictor call
// when the predictor supports it (BatchPredictor; the Pitot facade does),
// selects among feasible platforms with a pluggable Strategy, and bounds
// admission so a saturated cluster fails fast instead of queueing
// placements it cannot serve.
//
// Measured runtimes flow back through Observer: a simulator or live
// orchestrator reports each completed job's (workload, platform,
// interferers, seconds) and the predictor fine-tunes online — the paper's
// §6 extension, closing the predict → place → measure → observe loop.
//
// The package also provides two simulation harnesses: Simulate replays a
// static placement against a ground-truth Oracle, and Stream runs the full
// event loop (Poisson arrivals, true-runtime departures, optional online
// feedback) used by cmd/schedsim.
package sched

import (
	"errors"

	"repro/internal/core"
	"repro/internal/obs"
)

// Query identifies one (workload, platform, interferers) prediction — the
// same type the Pitot batch inference path consumes, so batched placement
// scoring needs no conversion.
type Query = core.Query

// Job is one placement request.
type Job struct {
	// Workload index within the dataset.
	Workload int
	// Deadline in seconds for one execution of the workload.
	Deadline float64
}

// JobID identifies a placed job for the rest of its lifecycle; Complete
// frees its colocation slot.
type JobID uint64

// Predictor supplies scalar runtime estimates for placement decisions.
// Both the Pitot facade and a ground-truth oracle satisfy it.
type Predictor interface {
	// EstimateSeconds returns the expected runtime of w on platform p with
	// the given co-located workloads.
	EstimateSeconds(w, p int, interferers []int) float64
	// BoundSeconds returns a runtime budget sufficient with probability
	// ≥ 1−eps, or +Inf if no valid bound exists.
	BoundSeconds(w, p int, interferers []int, eps float64) float64
}

// BatchPredictor additionally scores many queries in one call — the shape
// of a scheduler scanning every candidate platform for a job (or a whole
// wave of jobs). The Pitot facade implements it on top of
// EstimateBatch/BoundBatch; scalar-only predictors fall back to Predictor.
type BatchPredictor interface {
	Predictor
	// EstimateSecondsBatch returns the expected runtime for every query.
	EstimateSecondsBatch(qs []Query) []float64
	// BoundSecondsBatch returns the 1−eps runtime budget for every query,
	// +Inf where no valid bound exists.
	BoundSecondsBatch(qs []Query, eps float64) []float64
}

// FusedPredictor additionally scores both heads — the mean estimate and
// the conformal (1−eps) budget — for every query in one pass. Policies
// that mix the heads (rank on mean, gate feasibility on the bound) consume
// it through one call instead of back-to-back EstimateSecondsBatch +
// BoundSecondsBatch, sharing the per-platform interference fold and the
// query traversal across both models. The Pitot facade implements it on
// top of the fused core kernel.
type FusedPredictor interface {
	BatchPredictor
	// ScoreSecondsBatch fills meanOut[i] with the expected runtime and
	// boundOut[i] with the 1−eps budget (+Inf where no valid bound exists)
	// of qs[i]. len(meanOut) == len(boundOut) == len(qs). The values must
	// agree with what EstimateSecondsBatch and BoundSecondsBatch would
	// return for the same queries — exactly by default, or within the
	// implementation's documented relative-error tolerance when it runs an
	// approximate scoring mode (the Pitot facade's fast scoring keeps
	// every score within core.FastScoreMaxRelErr).
	ScoreSecondsBatch(qs []Query, eps float64, meanOut, boundOut []float64)
}

// Measurement is one observed job execution: the runtime actually measured
// on the platform the job ran on, under the co-location it experienced.
type Measurement struct {
	Workload    int
	Platform    int
	Interferers []int
	Seconds     float64
}

// Observer receives measured runtimes so the predictor can fine-tune
// online. The Pitot facade implements it via ObserveSeconds; each call may
// publish a new model snapshot, so in-flight placements keep reading the
// previous one.
type Observer interface {
	ObserveSeconds(ms []Measurement) error
}

// ErrUnknownJob is returned by Complete for an ID the scheduler never
// issued.
var ErrUnknownJob = errors.New("sched: unknown job")

// ErrJobCompleted is returned by Complete for an ID that was placed but is
// no longer in flight: it already completed, or was orphaned by a platform
// failure. Distinct from ErrUnknownJob so callers can treat duplicates and
// stale completions differently from outright bogus IDs.
var ErrJobCompleted = errors.New("sched: job already completed")

// Unplaced-assignment reasons (Assignment.Reason).
const (
	// ReasonAdmission: admission control refused the job (MaxInFlight).
	ReasonAdmission = "admission"
	// ReasonNoHealthy: no platform was healthy enough to consider — the
	// placeable set (Healthy + Degraded) was empty.
	ReasonNoHealthy = "no-healthy-platform"
	// ReasonCapacity: placeable platforms exist but every one was full.
	ReasonCapacity = "capacity"
	// ReasonInfeasible: candidates were scored but none met the deadline.
	ReasonInfeasible = "infeasible"
	// ReasonConflict: a replicated placement lost the optimistic commit
	// race (slot reservations kept hitting versions newer than the scored
	// snapshot) more than ReplicaConfig.MaxCommitRetries times and was shed.
	ReasonConflict = "commit-conflict"
)

// Assignment is the result of placing one job.
type Assignment struct {
	// ID identifies the placed job for Complete; zero when unplaced.
	ID  JobID
	Job Job
	// Platform is -1 if unplaced (infeasible or rejected).
	Platform int
	// Budget is the predicted value the decision was based on.
	Budget float64
	// Interferers are the workloads co-resident on the chosen platform at
	// placement time — the interference this job was scored under (a copy;
	// safe to retain). They are also what a Measurement of this execution
	// should report.
	Interferers []int
	// Rejected marks an admission-control refusal (cluster at MaxInFlight),
	// as opposed to an infeasible job no platform can serve in time.
	Rejected bool
	// Reason explains an unplaced assignment (one of the Reason*
	// constants); empty when the job was placed.
	Reason string
}

// Placed reports whether the job found a platform.
func (a Assignment) Placed() bool { return a.Platform >= 0 }

// Config bounds the scheduler's search and admission.
type Config struct {
	// NumPlatforms in the cluster.
	NumPlatforms int
	// MaxColocation is the maximum number of workloads per platform
	// (paper's dataset observes up to 4 simultaneous workloads).
	MaxColocation int
	// MaxInFlight bounds admission: once this many placed jobs have not
	// yet completed, further Place calls are rejected (Assignment.Rejected)
	// instead of queueing. 0 means no bound beyond platform capacity.
	MaxInFlight int
	// Strategy selects among feasible platforms; nil means LeastLoaded.
	Strategy Strategy
	// WaveChunk bounds how many jobs of a PlaceAll wave are placed per
	// scheduler-lock hold: the lock is released between chunks, so
	// concurrent Place/Complete calls interleave mid-wave and a Complete
	// waits at most one chunk — not the whole wave — behind a long
	// placement burst. Each chunk pre-scores against the then-current
	// cluster state, so with no concurrent events chunked placement is
	// decision-identical to an unchunked wave. 0 means the default (64);
	// negative places the whole wave under one lock hold (the PR 3
	// behavior).
	WaveChunk int
	// DisableBatch forces scalar scoring even when both the policy and the
	// predictor support batching — the reference path batch scoring must
	// be decision-identical to (used by tests and benchmarks).
	DisableBatch bool
	// DegradedPenalty multiplies the feasibility score of candidates on
	// Degraded platforms: a flaky platform must clear the deadline with
	// padding to spare before it wins a placement. Must be ≥ 1; 0 means
	// the default (1.25). Applied identically on the scalar, batch, and
	// fused scoring paths, so it preserves their decision identity.
	DegradedPenalty float64
	// Breaker tunes the per-platform circuit breaker fed by
	// CompleteOutcome; the zero value gets defaults (window 20, automatic
	// trips disabled until Threshold is set).
	Breaker BreakerConfig
	// Metrics, when non-nil, receives latency and size observations from
	// the placement hot paths (score-batch latency, wave latency, per-chunk
	// lock hold, wave size). Nil disables recording: every site is a single
	// nil check, no allocation, no time syscall.
	Metrics *obs.SchedMetrics
	// Recorder, when non-nil, receives typed lifecycle events (place,
	// complete, shed, orphan, …) keyed by JobID — the flight recorder
	// behind /debug/trace. Nil disables with the same zero-cost contract
	// as Metrics.
	Recorder *obs.Recorder
	// ScoreCache enables the memoized wave-scoring path: intra-wave
	// workload dedup plus a bounded cross-wave score cache keyed on
	// per-platform slot versions and the predictor's scoring epoch (see
	// ScoreCache in scorecache.go). Decision-bitwise-identical to the
	// uncached path; off by default. Ignored on the scalar (DisableBatch
	// or non-batch predictor) arm, which has no wave scoring to memoize.
	ScoreCache bool
	// ScoreCacheCap bounds total cached entries across all platforms
	// (split evenly per platform, FIFO eviction). 0 means the default
	// (4096 entries ≈ well under a megabyte).
	ScoreCacheCap int
}
