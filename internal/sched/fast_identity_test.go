package sched

import (
	"math"
	"math/rand"
	"testing"
)

// fastTol mirrors core.FastScoreMaxRelErr, the facade's documented
// relative-error bound for the approximate scoring kernel. The scheduler
// package deliberately doesn't import core, so the constant is restated.
const fastTol = 1e-9

// jitteredPred models an approximate scoring kernel: every score is the
// exact score perturbed by a deterministic relative error within fastTol.
// The perturbation is a pure function of the exact score's bit pattern —
// matching the real fast kernel, where two candidates with bitwise-equal
// exact scores run the identical arithmetic and stay tied — so exact ties
// survive the perturbation and break by platform index on both paths.
type jitteredPred struct {
	exact variedPred
	tol   float64
}

func (f jitteredPred) perturb(v float64) float64 {
	if v == 0 || math.IsInf(v, 0) || math.IsNaN(v) {
		return v
	}
	bits := math.Float64bits(v)
	h := (bits ^ bits>>33) * 0x9e3779b97f4a7c15
	u := float64(h>>11) / float64(1<<53)
	return v * (1 + f.tol*(2*u-1))
}

func (f jitteredPred) EstimateSeconds(w, p int, ks []int) float64 {
	return f.perturb(f.exact.EstimateSeconds(w, p, ks))
}

func (f jitteredPred) BoundSeconds(w, p int, ks []int, eps float64) float64 {
	return f.perturb(f.exact.BoundSeconds(w, p, ks, eps))
}

// TestFastScoringDecisionIdentityProperty is the tolerance-aware decision
// identity the fast kernel must preserve: when candidate score gaps dwarf
// the kernel's relative-error bound (the real-model situation — platform
// scores differ by percents, the kernel by parts per billion), placements
// and tie-breaks must be identical to the exact path, while scores are
// allowed to differ within tolerance. Exercised under degraded-health
// penalties and the mixed-head dual policies across waves, completions,
// and deliberately injected exact ties.
func TestFastScoringDecisionIdentityProperty(t *testing.T) {
	policies := []Policy{
		MeanBoundPolicy{Eps: 0.1},
		PaddedBoundPolicy{Eps: 0.1, Factor: 1.3},
		BoundPolicy{Eps: 0.1},
	}
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(900 + seed))
		nP := 3 + rng.Intn(6)
		base := make([]float64, nP)
		for i := range base {
			base[i] = 0.5 + 2*rng.Float64()
		}
		// Inject an exact tie between two platforms: identical base means
		// bitwise-identical exact scores whenever their resident sets
		// match, so the index tie-break is exercised on both paths.
		if nP >= 2 {
			base[nP-1] = base[0]
		}
		pol := policies[rng.Intn(len(policies))]
		cfg := Config{
			NumPlatforms:    nP,
			MaxColocation:   1 + rng.Intn(3),
			DegradedPenalty: 1.25,
		}
		exact := variedPred{base}
		se := mustNew(t, cfg, pol, &fusedFake{batchPred: &batchPred{Predictor: exact}})
		sj := mustNew(t, cfg, pol, &fusedFake{batchPred: &batchPred{Predictor: jitteredPred{exact: exact, tol: fastTol}}})
		// Dual policies engage the fused path; single-head BoundPolicy
		// scores through the batch path. Either way both schedulers must
		// sit on the same path so only the kernel differs.
		if se.Fused() != sj.Fused() || !se.Batched() || !sj.Batched() {
			t.Fatal("scoring-path wiring differs between exact and approximate schedulers")
		}
		deg := rng.Intn(nP)
		if err := se.Degrade(deg); err != nil {
			t.Fatal(err)
		}
		if err := sj.Degrade(deg); err != nil {
			t.Fatal(err)
		}

		var live []JobID
		for i := 0; i < 60; i++ {
			if len(live) > 0 && rng.Float64() < 0.25 {
				id := live[rng.Intn(len(live))]
				errE, errJ := se.Complete(id), sj.Complete(id)
				if (errE == nil) != (errJ == nil) {
					t.Fatalf("seed %d: complete disagreement on id %d", seed, id)
				}
				for j, l := range live {
					if l == id {
						live = append(live[:j], live[j+1:]...)
						break
					}
				}
				continue
			}
			var jobs []Job
			n := 1
			if rng.Float64() < 0.3 {
				n = 2 + rng.Intn(4)
			}
			for j := 0; j < n; j++ {
				jobs = append(jobs, Job{Workload: rng.Intn(20), Deadline: 0.3 + 6*rng.Float64()})
			}
			ae, aj := se.PlaceAll(jobs), sj.PlaceAll(jobs)
			for j := range jobs {
				if ae[j].Platform != aj[j].Platform || ae[j].Placed() != aj[j].Placed() {
					t.Fatalf("seed %d job %d: approximate path placed on %d, exact on %d (policy %s, degraded %d)",
						seed, j, aj[j].Platform, ae[j].Platform, pol.Name(), deg)
				}
				if ae[j].Placed() {
					// Scores may differ — but only within tolerance.
					diff := math.Abs(aj[j].Budget - ae[j].Budget)
					if diff > 2*fastTol*math.Abs(ae[j].Budget) {
						t.Fatalf("seed %d job %d: budget drifted %.3g relative (exact %.17g, approx %.17g)",
							seed, j, diff/ae[j].Budget, ae[j].Budget, aj[j].Budget)
					}
					live = append(live, ae[j].ID)
				}
			}
		}
	}
}

// TestRetryBackoffDefaultCap is the regression for the uncapped retry
// exponential: with RetryBackoffMax unset, attempt k used to wait
// RetryBackoff·2^(k−1) — past any replay horizon by attempt ~30, silently
// stranding the job. The delay must now cap at
// defaultBackoffCapFactor·RetryBackoff (explicit RetryBackoffMax still
// wins when set), jitter included.
func TestRetryBackoffDefaultCap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := StreamConfig{RetryBackoff: 0.1}
	for tries := 1; tries <= 50; tries++ {
		d := cfg.backoffDelay(tries, rng)
		if max := cfg.RetryBackoff * defaultBackoffCapFactor * 1.5; d > max {
			t.Fatalf("tries=%d: delay %.4g exceeds default cap %.4g", tries, d, max)
		}
		if d <= 0 {
			t.Fatalf("tries=%d: nonpositive delay %.4g", tries, d)
		}
	}
	// Attempt 30 under the old formula: 0.1·2^29 ≈ 5.4e7 simulated
	// seconds. Now it must land within the capped jitter window.
	if d := cfg.backoffDelay(30, rng); d > cfg.RetryBackoff*defaultBackoffCapFactor*1.5 {
		t.Fatalf("attempt 30 uncapped: %.4g", d)
	}

	// An explicit cap overrides the default, even a tighter one.
	tight := StreamConfig{RetryBackoff: 0.1, RetryBackoffMax: 0.3}
	for tries := 1; tries <= 20; tries++ {
		if d := tight.backoffDelay(tries, rng); d > 0.3*1.5 {
			t.Fatalf("tries=%d: delay %.4g exceeds explicit cap", tries, d)
		}
	}
	// Below every cap the exponential is untouched: attempt 1 waits
	// base·jitter with jitter in [0.5, 1.5).
	for i := 0; i < 50; i++ {
		d := cfg.backoffDelay(1, rng)
		if d < 0.1*0.5 || d >= 0.1*1.5 {
			t.Fatalf("attempt 1 delay %.4g outside jitter window", d)
		}
	}
}
