package sched

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// fusedFake extends the scalar-looping batchPred with the fused two-head
// call, again looping the scalar predictor so fused, batch, and scalar
// scoring are bitwise-identical — isolating the scheduler's decision logic
// from predictor float reassociation.
type fusedFake struct {
	*batchPred
	fusedCalls atomic.Int64
}

func (f *fusedFake) ScoreSecondsBatch(qs []Query, eps float64, meanOut, boundOut []float64) {
	f.fusedCalls.Add(1)
	for i, q := range qs {
		meanOut[i] = f.EstimateSeconds(q.Workload, q.Platform, q.Interferers)
		boundOut[i] = f.BoundSeconds(q.Workload, q.Platform, q.Interferers, eps)
	}
}

var _ FusedPredictor = (*fusedFake)(nil)

// Dual-head policies must make identical decisions on all three scoring
// paths: scalar ScoreDual (DisableBatch), two-pass batch
// (EstimateSecondsBatch + BoundSecondsBatch), and the fused one-pass
// ScoreSecondsBatch — across strategies, completions, and waves.
func TestDualPolicyDecisionIdentical(t *testing.T) {
	policies := []Policy{MeanBoundPolicy{Eps: 0.1}, PaddedBoundPolicy{Eps: 0.2, Factor: 1.3}}
	strategies := []Strategy{LeastLoaded{}, BestFit{}, UtilizationAware{}}
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(300 + seed))
		nP := 3 + rng.Intn(6)
		base := make([]float64, nP)
		for i := range base {
			base[i] = 0.5 + 2*rng.Float64()
		}
		pol := policies[rng.Intn(len(policies))]
		strat := strategies[rng.Intn(len(strategies))]
		cfg := Config{NumPlatforms: nP, MaxColocation: 1 + rng.Intn(3), MaxInFlight: 4 + rng.Intn(8), Strategy: strat}
		scalarCfg := cfg
		scalarCfg.DisableBatch = true
		fused := &fusedFake{batchPred: &batchPred{Predictor: variedPred{base}}}
		sf := mustNew(t, cfg, pol, fused)
		sb := mustNew(t, cfg, pol, &batchPred{Predictor: variedPred{base}})
		ss := mustNew(t, scalarCfg, pol, &batchPred{Predictor: variedPred{base}})
		if !sf.Fused() || sb.Fused() || ss.Batched() {
			t.Fatal("fused/batch/scalar wiring wrong")
		}
		var live []JobID
		for i := 0; i < 50; i++ {
			if len(live) > 0 && rng.Float64() < 0.3 {
				id := live[rng.Intn(len(live))]
				errF, errB, errS := sf.Complete(id), sb.Complete(id), ss.Complete(id)
				if (errF == nil) != (errS == nil) || (errB == nil) != (errS == nil) {
					t.Fatalf("seed %d: complete disagreement on id %d", seed, id)
				}
				if errF == nil {
					for j, l := range live {
						if l == id {
							live = append(live[:j], live[j+1:]...)
							break
						}
					}
				}
				continue
			}
			if rng.Float64() < 0.3 {
				// A small wave instead of a single placement.
				n := 2 + rng.Intn(4)
				jobs := make([]Job, n)
				for j := range jobs {
					jobs[j] = Job{Workload: rng.Intn(20), Deadline: 0.3 + 6*rng.Float64()}
				}
				wf, wb, ws := sf.PlaceAll(jobs), sb.PlaceAll(jobs), ss.PlaceAll(jobs)
				for j := range jobs {
					if !sameAssignment(wf[j], ws[j]) || !sameAssignment(wb[j], ws[j]) {
						t.Fatalf("seed %d wave job %d: fused %+v batch %+v scalar %+v (policy %s, strategy %s)",
							seed, j, wf[j], wb[j], ws[j], pol.Name(), strat.Name())
					}
					if wf[j].Placed() {
						live = append(live, wf[j].ID)
					}
				}
				continue
			}
			job := Job{Workload: rng.Intn(20), Deadline: 0.3 + 6*rng.Float64()}
			af, ab, as := sf.Place(job), sb.Place(job), ss.Place(job)
			if !sameAssignment(af, as) || !sameAssignment(ab, as) {
				t.Fatalf("seed %d job %d: fused %+v batch %+v scalar %+v (policy %s, strategy %s)",
					seed, i, af, ab, as, pol.Name(), strat.Name())
			}
			if af.Placed() {
				live = append(live, af.ID)
			}
		}
		if fused.fusedCalls.Load() == 0 {
			t.Fatalf("seed %d: fused path never engaged", seed)
		}
	}
}

// A dual policy's Budget must be the feasibility facet (the bound), never
// the ranking mean, and BestFit must rank on the mean.
func TestDualPolicyBudgetIsBound(t *testing.T) {
	pred := &fusedFake{batchPred: &batchPred{Predictor: variedPred{base: []float64{1, 1}}}}
	s := mustNew(t, Config{NumPlatforms: 2, Strategy: BestFit{}}, MeanBoundPolicy{Eps: 0.1}, pred)
	job := Job{Workload: 0, Deadline: 50}
	a := s.Place(job)
	if !a.Placed() {
		t.Fatal("unplaced")
	}
	vp := variedPred{base: []float64{1, 1}}
	wantBound := vp.BoundSeconds(job.Workload, a.Platform, nil, 0.1)
	if a.Budget != wantBound {
		t.Fatalf("budget %v, want the bound %v", a.Budget, wantBound)
	}
}

// Chunked PlaceAll must be decision-identical to the unchunked wave when no
// concurrent events interleave, for every chunk size, including across
// completions between waves.
func TestChunkedPlaceAllMatchesUnchunked(t *testing.T) {
	for _, chunk := range []int{1, 2, 5, 64} {
		for seed := int64(0); seed < 4; seed++ {
			rng := rand.New(rand.NewSource(700 + seed))
			nP := 4 + rng.Intn(5)
			base := make([]float64, nP)
			for i := range base {
				base[i] = 0.5 + 2*rng.Float64()
			}
			cfg := Config{NumPlatforms: nP, MaxColocation: 2, MaxInFlight: 2 * nP, WaveChunk: chunk}
			uncfg := cfg
			uncfg.WaveChunk = -1
			sc := mustNew(t, cfg, MeanBoundPolicy{Eps: 0.1}, &fusedFake{batchPred: &batchPred{Predictor: variedPred{base}}})
			su := mustNew(t, uncfg, MeanBoundPolicy{Eps: 0.1}, &fusedFake{batchPred: &batchPred{Predictor: variedPred{base}}})
			for wave := 0; wave < 3; wave++ {
				jobs := make([]Job, 5+rng.Intn(20))
				for i := range jobs {
					jobs[i] = Job{Workload: rng.Intn(15), Deadline: 0.3 + 6*rng.Float64()}
				}
				ac, au := sc.PlaceAll(jobs), su.PlaceAll(jobs)
				var placed []JobID
				for i := range jobs {
					if !sameAssignment(ac[i], au[i]) {
						t.Fatalf("chunk %d seed %d wave %d job %d: chunked %+v != unchunked %+v",
							chunk, seed, wave, i, ac[i], au[i])
					}
					if ac[i].Placed() {
						placed = append(placed, ac[i].ID)
					}
				}
				// Free roughly half the slots before the next wave.
				for i, id := range placed {
					if i%2 == 0 {
						continue
					}
					if err := sc.Complete(id); err != nil {
						t.Fatal(err)
					}
					if err := su.Complete(id); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
}

// A completion landing between chunks must be visible to the rest of the
// wave: with the single platform full at wave start, the unchunked wave
// places nothing, while the chunked wave places the job scored after the
// mid-wave completion freed the slot. Deterministic via the chunk-boundary
// hook.
func TestChunkedWaveMidWaveComplete(t *testing.T) {
	pred := &batchPred{Predictor: variedPred{base: []float64{1}}}
	wave := []Job{{Workload: 1, Deadline: 100}, {Workload: 2, Deadline: 100}}

	// Unchunked control: the resident occupies the only slot for the whole
	// wave; both jobs are unplaced.
	su := mustNew(t, Config{NumPlatforms: 1, MaxColocation: 1, WaveChunk: -1}, MeanPolicy{}, pred)
	r := su.Place(Job{Workload: 0, Deadline: 100})
	if !r.Placed() {
		t.Fatal("resident unplaced")
	}
	// A completion concurrent with an unchunked wave can only land before
	// or after the whole wave; mid-wave there is no window. (Complete here
	// runs after the wave to show the wave itself saw a full platform.)
	au := su.PlaceAll(wave)
	if au[0].Placed() || au[1].Placed() {
		t.Fatalf("unchunked wave placed through a full platform: %+v", au)
	}

	// Chunked: the hook completes the resident between chunk 1 and chunk 2;
	// job B's chunk pre-scores against the freed platform.
	sc := mustNew(t, Config{NumPlatforms: 1, MaxColocation: 1, WaveChunk: 1}, MeanPolicy{}, pred)
	r = sc.Place(Job{Workload: 0, Deadline: 100})
	if !r.Placed() {
		t.Fatal("resident unplaced")
	}
	gaps := 0
	sc.chunkGap = func() {
		gaps++
		if err := sc.Complete(r.ID); err != nil {
			t.Errorf("mid-wave complete: %v", err)
		}
	}
	ac := sc.PlaceAll(wave)
	if gaps != 1 {
		t.Fatalf("expected one chunk gap, got %d", gaps)
	}
	if ac[0].Placed() {
		t.Fatalf("job A placed while the platform was full: %+v", ac[0])
	}
	if !ac[1].Placed() {
		t.Fatalf("job B not placed after the mid-wave completion: %+v", ac[1])
	}
	if got := sc.Residents(0); len(got) != 1 || got[0] != 2 {
		t.Fatalf("residents after mid-wave interleave: %v", got)
	}
}

// Concurrent Complete/Place calls racing a long chunked wave must keep the
// bookkeeping consistent and drain cleanly. Run under -race.
func TestConcurrentCompleteDuringChunkedWave(t *testing.T) {
	pred := &fusedFake{batchPred: &batchPred{Predictor: variedPred{base: []float64{1, 1.2, 0.8, 1.5}}}}
	s := mustNew(t, Config{NumPlatforms: 4, MaxColocation: 8, WaveChunk: 4}, MeanBoundPolicy{Eps: 0.1}, pred)

	wave := make([]Job, 64)
	for i := range wave {
		wave[i] = Job{Workload: i % 10, Deadline: 1000}
	}
	stop := make(chan struct{})
	var pump sync.WaitGroup
	pump.Add(1)
	go func() {
		defer pump.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			as := s.PlaceAll(wave)
			for _, a := range as {
				if a.Placed() {
					if err := s.Complete(a.ID); err != nil {
						t.Errorf("pump complete: %v", err)
						return
					}
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			var mine []JobID
			for i := 0; i < 200; i++ {
				if len(mine) > 0 && rng.Float64() < 0.5 {
					id := mine[len(mine)-1]
					mine = mine[:len(mine)-1]
					if err := s.Complete(id); err != nil {
						t.Errorf("worker %d complete: %v", g, err)
						return
					}
					continue
				}
				a := s.Place(Job{Workload: rng.Intn(10), Deadline: 1000})
				if a.Placed() {
					mine = append(mine, a.ID)
				}
			}
			for _, id := range mine {
				if err := s.Complete(id); err != nil {
					t.Errorf("worker %d drain: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	pump.Wait()
	if got := s.InFlight(); got != 0 {
		t.Fatalf("in-flight after drain: %d", got)
	}
	total := 0
	for p := 0; p < 4; p++ {
		total += len(s.Residents(p))
	}
	if total != 0 {
		t.Fatalf("residents left after drain: %d", total)
	}
}

// Failed placements with RetryLimit set must re-enter after completions
// instead of dropping, conserve job accounting, and report the retry
// success rate.
func TestStreamRetryQueue(t *testing.T) {
	run := func(retryLimit int) StreamResult {
		pred := &batchPred{Predictor: variedPred{base: []float64{1}}}
		// One slot total: under rate 5 with ~1s runtimes most arrivals find
		// the platform busy.
		s := mustNew(t, Config{NumPlatforms: 1, MaxColocation: 1}, MeanPolicy{}, pred)
		oracle := oracleFunc(func(w, p int, ks []int) float64 { return 0.9 })
		source := func(rng *rand.Rand, i int) Job {
			return Job{Workload: i % 5, Deadline: 100}
		}
		res, err := Stream(StreamConfig{Jobs: 40, ArrivalRate: 5, RetryLimit: retryLimit},
			s, oracle, source, nil, rand.New(rand.NewSource(11)))
		if err != nil {
			t.Fatal(err)
		}
		if res.Arrived != 40 {
			t.Fatalf("arrived %d", res.Arrived)
		}
		if res.Placed+res.Unplaced+res.Rejected != res.Arrived {
			t.Fatalf("job conservation broken: %+v", res)
		}
		if res.Completed != res.Placed {
			t.Fatalf("placed %d completed %d", res.Placed, res.Completed)
		}
		if s.InFlight() != 0 {
			t.Fatalf("in-flight after stream: %d", s.InFlight())
		}
		return res
	}
	without := run(0)
	if without.RetryQueued != 0 || without.Retries != 0 || without.RetryPlaced != 0 {
		t.Fatalf("retry counters without retry: %+v", without)
	}
	if without.Unplaced == 0 {
		t.Fatal("degenerate setup: nothing unplaced without retries")
	}
	with := run(5)
	if with.RetryQueued == 0 || with.Retries == 0 {
		t.Fatalf("retry queue never engaged: %+v", with)
	}
	if with.RetryPlaced == 0 {
		t.Fatalf("no retried job ever placed: %+v", with)
	}
	if with.Placed <= without.Placed {
		t.Fatalf("retries placed %d jobs, no better than %d without", with.Placed, without.Placed)
	}
	if want := float64(with.RetryPlaced) / float64(with.RetryQueued); with.RetryRate != want {
		t.Fatalf("retry rate %v, want %v", with.RetryRate, want)
	}
}

// The time trigger must flush buffered measurements on its own, without
// the count trigger, and cooperate with it when both are armed.
func TestStreamFeedbackInterval(t *testing.T) {
	newSched := func() *Scheduler {
		pred := &batchPred{Predictor: variedPred{base: []float64{1, 1.2, 0.8}}}
		return mustNew(t, Config{NumPlatforms: 3, MaxColocation: 2}, MeanPolicy{}, pred)
	}
	oracle := oracleFunc(func(w, p int, ks []int) float64 { return 0.4 + 0.1*float64(w%3) })
	source := func(rng *rand.Rand, i int) Job { return Job{Workload: i % 9, Deadline: 100} }

	// Time trigger only: FeedbackEvery 0 used to disable feedback outright.
	obs := &feedbackObserver{}
	res, err := Stream(StreamConfig{Jobs: 60, ArrivalRate: 4, FeedbackInterval: 2},
		newSched(), oracle, source, obs, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Observed == 0 {
		t.Fatalf("time-based feedback never flushed: %+v", res)
	}
	if len(obs.ms) != res.Observed {
		t.Fatalf("observer saw %d, result says %d", len(obs.ms), res.Observed)
	}
	if res.Observed == res.Completed {
		// ~15 sim-seconds of completions flushed every 2: several flushes,
		// but the tail after the last flush stays buffered.
		t.Logf("note: all completions happened to flush (%d)", res.Observed)
	}

	// Both triggers: at least as many measurements flushed as with the
	// count trigger alone.
	obsBoth := &feedbackObserver{}
	resBoth, err := Stream(StreamConfig{Jobs: 60, ArrivalRate: 4, FeedbackEvery: 25, FeedbackInterval: 2},
		newSched(), oracle, source, obsBoth, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	obsCount := &feedbackObserver{}
	resCount, err := Stream(StreamConfig{Jobs: 60, ArrivalRate: 4, FeedbackEvery: 25},
		newSched(), oracle, source, obsCount, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	if resBoth.Observed < resCount.Observed {
		t.Fatalf("combined triggers flushed %d < count-only %d", resBoth.Observed, resCount.Observed)
	}
}

// The new mixed-head policy names parse; bad eps is rejected.
func TestParseDualPolicies(t *testing.T) {
	for _, n := range []string{"mean-bound", "padded-bound"} {
		pol, err := ParsePolicy(n, 0.1, 1.3)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := pol.(DualPolicy); !ok {
			t.Fatalf("%s is not a DualPolicy", n)
		}
		if _, err := ParsePolicy(n, 0, 1.3); err == nil {
			t.Fatalf("%s accepted eps 0", n)
		}
		if _, err := ParsePolicy(n, math.NaN(), 1.3); err == nil {
			t.Fatalf("%s accepted NaN eps", n)
		}
	}
}
