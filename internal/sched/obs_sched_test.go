package sched

import (
	"sync"
	"testing"

	"repro/internal/obs"
)

// obsTestScheduler builds a small chunked-wave scheduler with observability
// attached (or not), over the deterministic fakePred.
func obsTestScheduler(t *testing.T, attach bool) (*Scheduler, *obs.Recorder, *obs.SchedMetrics) {
	t.Helper()
	cfg := Config{NumPlatforms: 4, MaxColocation: 4, WaveChunk: 2}
	var rec *obs.Recorder
	var met *obs.SchedMetrics
	if attach {
		rec = obs.NewRecorder(1 << 14)
		met = obs.NewSchedMetrics("test_place_")
		cfg.Recorder = rec
		cfg.Metrics = met
	}
	// batchPred wraps the scalar fake so the batched wave path (and its
	// score-batch instrumentation) is exercised.
	pred := &batchPred{Predictor: fakePred{base: []float64{1, 1.1, 1.2, 1.3}}}
	s, err := New(cfg, MeanPolicy{}, pred)
	if err != nil {
		t.Fatal(err)
	}
	return s, rec, met
}

func obsWave(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Workload: i % 3, Deadline: 100}
	}
	return jobs
}

// TestFlightRecorderConcurrentChunkedWave races chunked PlaceAll waves
// against Complete and Fail/Recover churn with the recorder and histograms
// attached — under -race this pins the recorder's locking protocol at
// every instrumentation site (place, complete, shed, orphan, readmit).
func TestFlightRecorderConcurrentChunkedWave(t *testing.T) {
	s, rec, met := obsTestScheduler(t, true)
	const waves = 30
	ids := make(chan JobID, 1024)
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		defer close(ids)
		for w := 0; w < waves; w++ {
			for _, a := range s.PlaceAll(obsWave(8)) {
				if a.Placed() {
					ids <- a.ID
				}
			}
		}
	}()
	go func() {
		defer wg.Done()
		for id := range ids {
			// Duplicate/orphaned completions are expected under Fail churn.
			_ = s.Complete(id)
		}
	}()
	go func() {
		defer wg.Done()
		// Churn only platform 3, so placements keep landing (and
		// completing) on 0–2 while orphan/readmit paths run on 3.
		for i := 0; i < 20; i++ {
			_, _ = s.Fail(3)
			_ = s.Recover(3)
			_ = s.Recover(3) // close probation paths too
		}
	}()
	wg.Wait()

	evs := rec.Events()
	if len(evs) == 0 {
		t.Fatal("no events recorded")
	}
	counts := map[obs.EventKind]int{}
	for _, e := range evs {
		counts[e.Kind]++
	}
	if counts[obs.EvPlace] == 0 || counts[obs.EvScore] == 0 {
		t.Fatalf("missing place/score events: %v", counts)
	}
	if rec.Dropped() > 0 {
		t.Fatalf("ring overflowed (%d dropped) despite generous capacity", rec.Dropped())
	}
	// Conservation over the recorded lifecycle: every placement either
	// completed or was orphaned (the completer goroutine drains everything,
	// and orphans are never re-placed in this test).
	if got, want := counts[obs.EvComplete]+counts[obs.EvOrphan], counts[obs.EvPlace]; got != want {
		t.Fatalf("complete+orphan = %d, place = %d", got, want)
	}
	if met.WavePlace.Count() != waves || met.WaveSize.Count() != waves {
		t.Fatalf("wave histograms: place=%d size=%d, want %d", met.WavePlace.Count(), met.WaveSize.Count(), waves)
	}
	if met.ChunkHold.Count() == 0 {
		t.Fatal("no chunk-hold observations")
	}
}

// TestObsDecisionIdentity: attaching the recorder and histograms must not
// perturb a single placement decision — the instrumented scheduler's
// assignments are identical to the bare one's.
func TestObsDecisionIdentity(t *testing.T) {
	plain, _, _ := obsTestScheduler(t, false)
	wired, _, _ := obsTestScheduler(t, true)
	jobs := obsWave(32)
	a := plain.PlaceAll(jobs)
	b := wired.PlaceAll(jobs)
	for i := range a {
		if a[i].Platform != b[i].Platform || a[i].Budget != b[i].Budget || a[i].Reason != b[i].Reason {
			t.Fatalf("decision diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestDisabledObsAllocParity pins the disabled-path cost: a PlaceAll +
// Complete cycle allocates exactly as much with observability attached as
// without — the recorder ring is pre-sized and the histograms are atomic
// counters, so neither path allocates per event.
func TestDisabledObsAllocParity(t *testing.T) {
	measure := func(attach bool) float64 {
		s, _, _ := obsTestScheduler(t, attach)
		jobs := obsWave(8)
		return testing.AllocsPerRun(200, func() {
			for _, a := range s.PlaceAll(jobs) {
				if a.Placed() {
					if err := s.Complete(a.ID); err != nil {
						t.Fatal(err)
					}
				}
			}
		})
	}
	off, on := measure(false), measure(true)
	if off != on {
		t.Fatalf("alloc parity broken: obs off %v allocs/op, obs on %v allocs/op", off, on)
	}
}

func benchPlaceAll(b *testing.B, attach bool) {
	cfg := Config{NumPlatforms: 8, MaxColocation: 4}
	if attach {
		cfg.Recorder = obs.NewRecorder(1 << 12)
		cfg.Metrics = obs.NewSchedMetrics("bench_place_")
	}
	s, err := New(cfg, MeanPolicy{}, fakePred{base: []float64{1, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7}})
	if err != nil {
		b.Fatal(err)
	}
	jobs := obsWave(16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range s.PlaceAll(jobs) {
			if a.Placed() {
				_ = s.Complete(a.ID)
			}
		}
	}
}

// BenchmarkPlaceAllObsOff / BenchmarkPlaceAllObsOn measure the wave path
// with observability disabled and enabled — the CI overhead gate compares
// them (the disabled side must match the pre-observability baseline).
func BenchmarkPlaceAllObsOff(b *testing.B) { benchPlaceAll(b, false) }
func BenchmarkPlaceAllObsOn(b *testing.B)  { benchPlaceAll(b, true) }
