package sched

import (
	"math/rand"
	"testing"
)

// epochPred is a deterministic varied predictor whose scores depend on a
// mutable epoch — a stand-in for Observe snapshot publishes. It implements
// the batch facet by looping the scalar calls (bitwise batch/scalar
// agreement) and counts queries scored through the batch path, so tests
// can assert how much predictor work the cache actually eliminated.
type epochPred struct {
	base    []float64
	epoch   uint64
	queries int64
}

func (e *epochPred) factor() float64 { return 1 + 0.05*float64(e.epoch%7) }

func (e *epochPred) EstimateSeconds(w, p int, ks []int) float64 {
	v := e.base[p] * (1 + 0.21*float64(w%5)) * (1 + 0.37*float64(len(ks))) * e.factor()
	for _, k := range ks {
		v *= 1 + 0.013*float64(k%7)
	}
	return v
}

func (e *epochPred) BoundSeconds(w, p int, ks []int, eps float64) float64 {
	return e.EstimateSeconds(w, p, ks) * (1 + 0.5*(1-eps))
}

func (e *epochPred) EstimateSecondsBatch(qs []Query) []float64 {
	e.queries += int64(len(qs))
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = e.EstimateSeconds(q.Workload, q.Platform, q.Interferers)
	}
	return out
}

func (e *epochPred) BoundSecondsBatch(qs []Query, eps float64) []float64 {
	e.queries += int64(len(qs))
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = e.BoundSeconds(q.Workload, q.Platform, q.Interferers, eps)
	}
	return out
}

func (e *epochPred) ScoreEpoch() uint64 { return e.epoch }
func (e *epochPred) Version() uint64    { return e.epoch }

// cacheArm is the lifecycle surface the identity property drives in
// lockstep; both *Scheduler and *ReplicaSet satisfy it.
type cacheArm interface {
	PlaceAll(jobs []Job) []Assignment
	Complete(id JobID) error
	CompleteOutcome(id JobID, miss bool) (bool, error)
	Fail(p int) ([]Orphan, error)
	Degrade(p int) error
	Recover(p int) error
}

// TestScoreCacheDecisionIdentityUnderChurn is the tentpole property on the
// fake predictor: for seeded random op sequences — dup-heavy waves,
// completions with breaker outcomes, Fail/Degrade/Recover churn, and
// mid-stream scoring-epoch bumps — the cache-on Scheduler, the cache-off
// single-replica ReplicaSet, and the cache-on ReplicaSet all produce
// assignments bitwise identical to the cache-off Scheduler, including job
// IDs, budgets, unplaced reasons, and orphan sets.
func TestScoreCacheDecisionIdentityUnderChurn(t *testing.T) {
	policies := []Policy{MeanPolicy{}, BoundPolicy{Eps: 0.1}, MeanBoundPolicy{Eps: 0.1}}
	for seed := int64(0); seed < 6; seed++ {
		for pi, pol := range policies {
			rng := rand.New(rand.NewSource(seed*31 + int64(pi)))
			nP := 3 + rng.Intn(5)
			base := make([]float64, nP)
			for p := range base {
				base[p] = 0.5 + 3*rng.Float64()
			}
			pred := &epochPred{base: base}
			cfg := Config{
				NumPlatforms:  nP,
				MaxColocation: 3,
				WaveChunk:     4,
				Breaker:       BreakerConfig{Threshold: 0.5, Window: 4, Probation: 2},
			}
			cfgOn := cfg
			cfgOn.ScoreCache = true
			ref := mustNew(t, cfg, pol, pred)
			cached := mustNew(t, cfgOn, pol, pred)
			rsOff, err := NewReplicaSet(cfg, ReplicaConfig{Replicas: 1, Shards: 1}, pol, pred)
			if err != nil {
				t.Fatal(err)
			}
			rsOn, err := NewReplicaSet(cfgOn, ReplicaConfig{Replicas: 1, Shards: 1}, pol, pred)
			if err != nil {
				t.Fatal(err)
			}
			arms := map[string]cacheArm{"sched+cache": cached, "rset-cache": rsOff, "rset+cache": rsOn}

			var live []JobID
			var retired []JobID
			for op := 0; op < 160; op++ {
				switch k := rng.Intn(100); {
				case k < 50: // wave with heavy workload duplication
					nJ := 1 + rng.Intn(10)
					jobs := make([]Job, nJ)
					for i := range jobs {
						w := rng.Intn(6)
						jobs[i] = Job{
							Workload: w,
							Deadline: pred.EstimateSeconds(w, rng.Intn(nP), nil) * (0.5 + 2.5*rng.Float64()),
						}
					}
					want := ref.PlaceAll(jobs)
					for name, arm := range arms {
						got := arm.PlaceAll(jobs)
						for i := range want {
							if !sameAssignment(got[i], want[i]) || got[i].Reason != want[i].Reason {
								t.Fatalf("seed %d %s op %d %s: job %d got %+v want %+v",
									seed, pol.Name(), op, name, i, got[i], want[i])
							}
						}
					}
					for _, a := range want {
						if a.Placed() {
							live = append(live, a.ID)
						}
					}
				case k < 65 && len(live) > 0: // complete (sometimes with a breaker outcome)
					i := rng.Intn(len(live))
					id := live[i]
					live = append(live[:i], live[i+1:]...)
					retired = append(retired, id)
					if rng.Intn(2) == 0 {
						miss := rng.Intn(3) == 0
						wantTrip, wantErr := ref.CompleteOutcome(id, miss)
						for name, arm := range arms {
							trip, err := arm.CompleteOutcome(id, miss)
							if trip != wantTrip || (err == nil) != (wantErr == nil) {
								t.Fatalf("seed %d %s op %d %s: CompleteOutcome(%d) = (%v,%v) want (%v,%v)",
									seed, pol.Name(), op, name, id, trip, err, wantTrip, wantErr)
							}
						}
					} else {
						wantErr := ref.Complete(id)
						for name, arm := range arms {
							if err := arm.Complete(id); (err == nil) != (wantErr == nil) {
								t.Fatalf("seed %d %s op %d %s: Complete(%d) = %v want %v",
									seed, pol.Name(), op, name, id, err, wantErr)
							}
						}
					}
				case k < 72 && len(retired) > 0: // duplicate completion of a retired ID
					id := retired[rng.Intn(len(retired))]
					wantErr := ref.Complete(id)
					for name, arm := range arms {
						if err := arm.Complete(id); (err == nil) != (wantErr == nil) {
							t.Fatalf("seed %d %s op %d %s: stale Complete(%d) = %v want %v",
								seed, pol.Name(), op, name, id, err, wantErr)
						}
					}
				case k < 80: // platform failure orphans residents
					p := rng.Intn(nP)
					want, wantErr := ref.Fail(p)
					for name, arm := range arms {
						got, err := arm.Fail(p)
						if (err == nil) != (wantErr == nil) || len(got) != len(want) {
							t.Fatalf("seed %d %s op %d %s: Fail(%d) = (%d orphans, %v) want (%d, %v)",
								seed, pol.Name(), op, name, p, len(got), err, len(want), wantErr)
						}
						for i := range want {
							if got[i].ID != want[i].ID || got[i].Job != want[i].Job {
								t.Fatalf("seed %d %s op %d %s: orphan %d = %+v want %+v",
									seed, pol.Name(), op, name, i, got[i], want[i])
							}
						}
					}
					for _, o := range want {
						for i, id := range live {
							if id == o.ID {
								live = append(live[:i], live[i+1:]...)
								break
							}
						}
						retired = append(retired, o.ID)
					}
				case k < 86: // degrade
					p := rng.Intn(nP)
					wantErr := ref.Degrade(p)
					for name, arm := range arms {
						if err := arm.Degrade(p); (err == nil) != (wantErr == nil) {
							t.Fatalf("seed %d %s op %d %s: Degrade(%d) = %v want %v",
								seed, pol.Name(), op, name, p, err, wantErr)
						}
					}
				case k < 92: // recover
					p := rng.Intn(nP)
					wantErr := ref.Recover(p)
					for name, arm := range arms {
						if err := arm.Recover(p); (err == nil) != (wantErr == nil) {
							t.Fatalf("seed %d %s op %d %s: Recover(%d) = %v want %v",
								seed, pol.Name(), op, name, p, err, wantErr)
						}
					}
				default: // snapshot publish: every cached column goes stale
					pred.epoch++
				}
			}
			if st, on := cached.ScoreCacheStats(); !on || st.Hits == 0 {
				t.Errorf("seed %d %s: cached scheduler saw no hits (on=%v stats=%+v)", seed, pol.Name(), on, st)
			}
			if st, on := rsOn.ScoreCacheStats(); !on || st.Hits == 0 {
				t.Errorf("seed %d %s: cached replica set saw no hits (on=%v stats=%+v)", seed, pol.Name(), on, st)
			}
		}
	}
}

// infeasibleWave builds n distinct-workload jobs no platform can serve in
// time: they are scored everywhere (filling the cache) but never placed,
// so no slot version moves between waves.
func infeasibleWave(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Workload: i, Deadline: 1e-12}
	}
	return jobs
}

// TestScoreCacheCountersAndInvalidation pins the counter semantics: cold
// misses, steady-state full hits, whole-cache staleness on an epoch bump,
// single-column staleness on a platform mutation, and the doorkeeper
// admission delay — a changed (ver, epoch) key is stored only on its
// second consecutive sighting, so a stale column invalidates one wave
// after the key change, not on it.
func TestScoreCacheCountersAndInvalidation(t *testing.T) {
	pred := &epochPred{base: []float64{1, 2, 3}}
	s := mustNew(t, Config{NumPlatforms: 3, ScoreCache: true}, MeanPolicy{}, pred)
	wave := infeasibleWave(5)

	// Cold columns admit immediately: no doorkeeper delay on first touch.
	s.PlaceAll(wave)
	st, on := s.ScoreCacheStats()
	if !on {
		t.Fatal("cache not enabled")
	}
	if st.Hits != 0 || st.Misses != 15 || st.Entries != 15 {
		t.Fatalf("cold wave: %+v", st)
	}

	s.PlaceAll(wave)
	if st, _ = s.ScoreCacheStats(); st.Hits != 15 || st.Misses != 15 {
		t.Fatalf("warm wave: %+v", st)
	}
	if pred.queries != 15 {
		t.Fatalf("predictor scored %d queries, want 15 (second wave fully cached)", pred.queries)
	}

	// Epoch bump: every column is stale. The first wave under the new epoch
	// misses but is held at the doorkeeper (no reset, stale entries kept);
	// the second sighting admits it, resetting all three columns.
	pred.epoch++
	s.PlaceAll(wave)
	if st, _ = s.ScoreCacheStats(); st.Hits != 15 || st.Misses != 30 || st.Invalidations != 0 || st.Entries != 15 {
		t.Fatalf("first wave after epoch bump (doorkeeper hold): %+v", st)
	}
	s.PlaceAll(wave)
	if st, _ = s.ScoreCacheStats(); st.Hits != 15 || st.Misses != 45 || st.Invalidations != 3 {
		t.Fatalf("second wave after epoch bump (admitted): %+v", st)
	}
	s.PlaceAll(wave)
	if st, _ = s.ScoreCacheStats(); st.Hits != 30 || st.Misses != 45 {
		t.Fatalf("steady state under new epoch: %+v", st)
	}

	// Platform mutation: only platform 0's column goes stale, and only it
	// pays the one-wave admission delay — the other columns keep hitting.
	if err := s.Degrade(0); err != nil {
		t.Fatal(err)
	}
	s.PlaceAll(wave)
	if st, _ = s.ScoreCacheStats(); st.Hits != 40 || st.Misses != 50 || st.Invalidations != 3 {
		t.Fatalf("first wave after Degrade(0) (doorkeeper hold): %+v", st)
	}
	s.PlaceAll(wave)
	if st, _ = s.ScoreCacheStats(); st.Hits != 50 || st.Misses != 55 || st.Invalidations != 4 {
		t.Fatalf("second wave after Degrade(0) (admitted): %+v", st)
	}
	s.PlaceAll(wave)
	if st, _ = s.ScoreCacheStats(); st.Hits != 65 || st.Misses != 55 {
		t.Fatalf("steady state after Degrade(0): %+v", st)
	}
	if st.Entries != 15 {
		t.Fatalf("entries %d, want 15", st.Entries)
	}
}

// TestScoreCacheEvictionBound pins the memory bound: a column holds at
// most cap/nPlatforms entries (floored), evicted FIFO and counted.
func TestScoreCacheEvictionBound(t *testing.T) {
	pred := &epochPred{base: []float64{1}}
	// Cap 1 floors to minScoreCacheCol entries for the single platform.
	s := mustNew(t, Config{NumPlatforms: 1, ScoreCache: true, ScoreCacheCap: 1}, MeanPolicy{}, pred)
	s.PlaceAll(infeasibleWave(12))
	st, _ := s.ScoreCacheStats()
	if st.Entries != minScoreCacheCol || st.Evictions != 12-minScoreCacheCol {
		t.Fatalf("eviction bound: %+v (perCol %d)", st, minScoreCacheCol)
	}
	// The survivors are the FIFO tail: workloads 4..11 hit, 0..3 re-miss.
	s.PlaceAll(infeasibleWave(12))
	st2, _ := s.ScoreCacheStats()
	if hits := st2.Hits - st.Hits; hits != uint64(minScoreCacheCol) {
		t.Fatalf("second wave hits %d, want %d", hits, minScoreCacheCol)
	}
}

// TestScoreCacheIntraWaveDedup pins level 1: a dup-heavy wave collapses to
// distinctWorkloads×platform queries before the predictor is consulted.
func TestScoreCacheIntraWaveDedup(t *testing.T) {
	pred := &epochPred{base: []float64{1, 2, 3, 4}}
	s := mustNew(t, Config{NumPlatforms: 4, ScoreCache: true}, MeanPolicy{}, pred)
	jobs := make([]Job, 12)
	for i := range jobs {
		jobs[i] = Job{Workload: i % 3, Deadline: 1e-12}
	}
	s.PlaceAll(jobs)
	if pred.queries != 12 { // 3 distinct workloads × 4 platforms
		t.Fatalf("predictor scored %d queries, want 12 (deduped from %d)", pred.queries, 12*4)
	}
}

// TestScoreCacheScalarArmDisabled pins that the cache is a no-op on the
// scalar scoring arm: nothing to memoize, stats report disabled.
func TestScoreCacheScalarArmDisabled(t *testing.T) {
	pred := &epochPred{base: []float64{1, 2}}
	s := mustNew(t, Config{NumPlatforms: 2, ScoreCache: true, DisableBatch: true}, MeanPolicy{}, pred)
	if _, on := s.ScoreCacheStats(); on {
		t.Fatal("cache reported enabled on the scalar arm")
	}
}

// TestScoreCacheSharedAcrossReplicas pins the cross-replica contract: the
// cache keys on SlotStore versions, so one replica's cold scoring serves
// another replica's identical view wholesale.
func TestScoreCacheSharedAcrossReplicas(t *testing.T) {
	pred := &epochPred{base: []float64{1, 2, 3, 4}}
	rs, err := NewReplicaSet(Config{NumPlatforms: 4, ScoreCache: true},
		ReplicaConfig{Replicas: 2, Shards: 1}, MeanPolicy{}, pred)
	if err != nil {
		t.Fatal(err)
	}
	wave := infeasibleWave(6)
	rs.Replica(0).PlaceAll(wave)
	st, on := rs.ScoreCacheStats()
	if !on || st.Hits != 0 || st.Misses != 24 {
		t.Fatalf("replica 0 cold wave: on=%v %+v", on, st)
	}
	rs.Replica(1).PlaceAll(wave)
	if st, _ = rs.ScoreCacheStats(); st.Hits != 24 {
		t.Fatalf("replica 1 warm wave: %+v", st)
	}
}

// TestScoreCacheStableWaveAllocsNoWorse guards the hot path: once warm, a
// fully cached steady-state wave allocates no more than the identical
// uncached wave (it allocates strictly less predictor scratch, but the
// pinned contract is simply "no worse").
func TestScoreCacheStableWaveAllocsNoWorse(t *testing.T) {
	mk := func(cache bool) *Scheduler {
		pred := &epochPred{base: []float64{1, 2, 3, 4}}
		cfg := Config{NumPlatforms: 4, ScoreCache: cache}
		return mustNew(t, cfg, MeanPolicy{}, pred)
	}
	wave := infeasibleWave(8)
	measure := func(s *Scheduler) float64 {
		s.PlaceAll(wave) // warm scratch and cache
		return testing.AllocsPerRun(100, func() { s.PlaceAll(wave) })
	}
	off := measure(mk(false))
	on := measure(mk(true))
	if on > off {
		t.Fatalf("cached steady-state wave allocates more than uncached: %v > %v", on, off)
	}
}
