// Package wasmvm implements a miniature WebAssembly-style stack virtual
// machine with an instrumented interpreter.
//
// The paper's workload features are opcode-execution counts collected by
// instrumenting the WebAssembly Micro Runtime fast interpreter (App. C.2).
// This package provides the equivalent substrate for the reproduction: a
// bytecode VM whose instruction set mirrors the instrumented counters in
// internal/wasmcluster, benchmark program generators in the style of each
// suite (internal/wasmvm/bench.go), and an interpreter that counts every
// executed opcode. internal/wasmcluster can profile generated programs
// through this VM to derive workload features from real execution rather
// than a synthetic mixture (Config.UseVM).
//
// The VM is deliberately small: i32/i64/f32/f64 values on an operand
// stack, locals, linear memory with bounds checking, direct and indirect
// calls, and structured-control opcodes lowered to explicit branch
// targets. It is an interpreter substrate, not a spec-complete
// WebAssembly implementation.
package wasmvm

import (
	"fmt"
	"math"
)

// Opcode identifies one instruction. The numbering matches the feature
// columns used by the dataset generator (see Names and the alignment test
// in internal/wasmcluster).
type Opcode uint8

// Instruction set. Grouped as: integer ALU, float, memory, control,
// comparison/conversion, misc/host.
const (
	OpI32Add Opcode = iota
	OpI32Sub
	OpI32Mul
	OpI32DivS
	OpI32And
	OpI32Or
	OpI32Xor
	OpI32Shl
	OpI32ShrU
	OpI64Add
	OpI64Mul
	OpI64Shl
	OpF32Add
	OpF32Mul
	OpF32Div
	OpF64Add
	OpF64Sub
	OpF64Mul
	OpF64Div
	OpF64Sqrt
	OpI32Load
	OpI32Store
	OpI64Load
	OpI64Store
	OpF32Load
	OpF32Store
	OpF64Load
	OpF64Store
	OpI32Load8U
	OpI32Store8
	OpMemoryGrow
	OpMemoryCopy
	OpBr
	OpBrIf
	OpBrTable
	OpCall
	OpCallIndirect
	OpReturn
	OpIf
	OpLoop
	OpBlock
	OpI32Eq
	OpI32LtS
	OpI32GtS
	OpF64Lt
	OpF64Gt
	OpI32WrapI64
	OpF64ConvertI32S
	OpLocalGet
	OpLocalSet
	OpGlobalGet
	OpSelect
	OpDrop
	OpWasiFdRead
	OpWasiFdWrite
	// OpI32Const pushes an immediate; it is an encoding helper and is
	// counted under local.get (constant materialization) like fast
	// interpreters fold it.
	OpI32Const
	OpF64Const
	// OpEnd terminates a function body.
	OpEnd

	numOpcodes
)

// NumCounted is the number of opcode counters exposed as features
// (OpI32Add .. OpWasiFdWrite); encoding helpers beyond it are folded.
const NumCounted = int(OpWasiFdWrite) + 1

// names in feature-column order.
var names = [numOpcodes]string{
	"i32.add", "i32.sub", "i32.mul", "i32.div_s", "i32.and", "i32.or", "i32.xor", "i32.shl", "i32.shr_u",
	"i64.add", "i64.mul", "i64.shl",
	"f32.add", "f32.mul", "f32.div", "f64.add", "f64.sub", "f64.mul", "f64.div", "f64.sqrt",
	"i32.load", "i32.store", "i64.load", "i64.store", "f32.load", "f32.store", "f64.load", "f64.store",
	"i32.load8_u", "i32.store8", "memory.grow", "memory.copy",
	"br", "br_if", "br_table", "call", "call_indirect", "return", "if", "loop", "block",
	"i32.eq", "i32.lt_s", "i32.gt_s", "f64.lt", "f64.gt", "i32.wrap_i64", "f64.convert_i32_s",
	"local.get", "local.set", "global.get", "select", "drop", "wasi.fd_read", "wasi.fd_write",
	"i32.const", "f64.const", "end",
}

// Name returns the opcode mnemonic.
func (o Opcode) Name() string {
	if int(o) < len(names) {
		return names[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// CountedNames returns the mnemonics of the counted (feature) opcodes in
// column order.
func CountedNames() []string {
	out := make([]string, NumCounted)
	for i := range out {
		out[i] = names[i]
	}
	return out
}

// Instr is one lowered instruction. Structured control has been resolved
// to absolute instruction indices: for OpBr/OpBrIf, Imm is the jump
// target; for OpIf, Imm is the else/endif target; OpLoop/OpBlock are
// counted markers. For OpBrTable, Imm indexes the function's tables slice.
// For constants, F holds the value (bit pattern for integers).
type Instr struct {
	Op  Opcode
	Imm int32
	F   float64
}

// Function is a callable unit.
type Function struct {
	Name      string
	NumParams int
	NumLocals int // including params
	Body      []Instr
	Tables    [][]int32 // br_table target lists
}

// Program is a module: functions, an indirect-call table, and the initial
// memory size in bytes.
type Program struct {
	Funcs   []Function
	Table   []int32 // function indices for call_indirect
	MemSize int
	Start   int // index of the entry function

	// initMem, when non-nil, seeds linear memory (data segment).
	initMem []byte
}

// SetInitialMemory installs a data segment copied into linear memory at
// VM creation.
func (p *Program) SetInitialMemory(data []byte) { p.initMem = data }

// Result of an execution.
type Result struct {
	// Counts[op] is the number of times each counted opcode executed.
	Counts []int64
	// Steps is the total number of instructions executed.
	Steps int64
	// Return value of the entry function (0 if none).
	Return uint64
	// Fuel exhausted (execution truncated).
	OutOfFuel bool
}

// execution errors
var (
	ErrStackUnderflow = fmt.Errorf("wasmvm: stack underflow")
	ErrOOB            = fmt.Errorf("wasmvm: memory access out of bounds")
	ErrBadFunction    = fmt.Errorf("wasmvm: bad function index")
	ErrDivByZero      = fmt.Errorf("wasmvm: integer divide by zero")
	ErrCallDepth      = fmt.Errorf("wasmvm: call depth exceeded")
)

const maxCallDepth = 256

// VM executes programs.
type VM struct {
	prog   *Program
	mem    []byte
	stack  []uint64
	counts []int64
	steps  int64
	fuel   int64
	wasiIO int64 // bytes moved through wasi fd_read/fd_write
}

// NewVM prepares an execution context for prog.
func NewVM(prog *Program) *VM {
	vm := &VM{
		prog:   prog,
		mem:    make([]byte, prog.MemSize),
		counts: make([]int64, NumCounted),
	}
	copy(vm.mem, prog.initMem)
	return vm
}

// Run executes the entry function with the given i32 arguments and a fuel
// budget (maximum instructions; <=0 means 100M). Counts accumulate across
// calls to Run on the same VM.
func (vm *VM) Run(fuel int64, args ...int32) (Result, error) {
	if fuel <= 0 {
		fuel = 100_000_000
	}
	vm.fuel = fuel
	vm.stack = vm.stack[:0]
	locals := make([]uint64, 0, 16)
	for _, a := range args {
		locals = append(locals, uint64(uint32(a)))
	}
	ret, outOfFuel, err := vm.call(vm.prog.Start, locals, 0)
	res := Result{
		Counts:    append([]int64(nil), vm.counts...),
		Steps:     vm.steps,
		Return:    ret,
		OutOfFuel: outOfFuel,
	}
	return res, err
}

// count tallies an executed opcode (encoding helpers fold into local.get).
func (vm *VM) count(op Opcode) {
	switch {
	case int(op) < NumCounted:
		vm.counts[op]++
	case op == OpI32Const || op == OpF64Const:
		vm.counts[OpLocalGet]++
	}
	vm.steps++
	vm.fuel--
}

func (vm *VM) push(v uint64) { vm.stack = append(vm.stack, v) }

func (vm *VM) pop() (uint64, error) {
	if len(vm.stack) == 0 {
		return 0, ErrStackUnderflow
	}
	v := vm.stack[len(vm.stack)-1]
	vm.stack = vm.stack[:len(vm.stack)-1]
	return v, nil
}

// pop2 pops b then a (a pushed first).
func (vm *VM) pop2() (a, b uint64, err error) {
	b, err = vm.pop()
	if err != nil {
		return
	}
	a, err = vm.pop()
	return
}

func (vm *VM) checkMem(addr, size int64) error {
	if addr < 0 || addr+size > int64(len(vm.mem)) {
		return ErrOOB
	}
	return nil
}

func (vm *VM) load(addr int64, size int) (uint64, error) {
	if err := vm.checkMem(addr, int64(size)); err != nil {
		return 0, err
	}
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(vm.mem[addr+int64(i)])
	}
	return v, nil
}

func (vm *VM) store(addr int64, size int, v uint64) error {
	if err := vm.checkMem(addr, int64(size)); err != nil {
		return err
	}
	for i := 0; i < size; i++ {
		vm.mem[addr+int64(i)] = byte(v)
		v >>= 8
	}
	return nil
}

// call executes function fi with the given locals (params first).
func (vm *VM) call(fi int, locals []uint64, depth int) (ret uint64, outOfFuel bool, err error) {
	if fi < 0 || fi >= len(vm.prog.Funcs) {
		return 0, false, ErrBadFunction
	}
	if depth > maxCallDepth {
		return 0, false, ErrCallDepth
	}
	f := &vm.prog.Funcs[fi]
	for len(locals) < f.NumLocals {
		locals = append(locals, 0)
	}
	pc := 0
	for pc < len(f.Body) {
		if vm.fuel <= 0 {
			return 0, true, nil
		}
		in := &f.Body[pc]
		vm.count(in.Op)
		switch in.Op {
		case OpI32Const:
			vm.push(uint64(uint32(in.Imm)))
		case OpF64Const:
			vm.push(math.Float64bits(in.F))
		case OpLocalGet:
			if int(in.Imm) >= len(locals) {
				return 0, false, fmt.Errorf("wasmvm: local %d out of range", in.Imm)
			}
			vm.push(locals[in.Imm])
		case OpLocalSet:
			v, e := vm.pop()
			if e != nil {
				return 0, false, e
			}
			if int(in.Imm) >= len(locals) {
				return 0, false, fmt.Errorf("wasmvm: local %d out of range", in.Imm)
			}
			locals[in.Imm] = v
		case OpGlobalGet:
			// single global: the VM's wasi byte counter (observable state)
			vm.push(uint64(vm.wasiIO))
		case OpDrop:
			if _, e := vm.pop(); e != nil {
				return 0, false, e
			}
		case OpSelect:
			c, e := vm.pop()
			if e != nil {
				return 0, false, e
			}
			v1, v2, e := vm.pop2() // v1 pushed first, v2 on top
			if e != nil {
				return 0, false, e
			}
			// WebAssembly semantics: nonzero condition keeps v1.
			if c != 0 {
				vm.push(v1)
			} else {
				vm.push(v2)
			}

		// integer ALU (i32 semantics on low 32 bits)
		case OpI32Add, OpI32Sub, OpI32Mul, OpI32DivS, OpI32And, OpI32Or, OpI32Xor, OpI32Shl, OpI32ShrU,
			OpI32Eq, OpI32LtS, OpI32GtS:
			a, b, e := vm.pop2()
			if e != nil {
				return 0, false, e
			}
			x, y := int32(uint32(a)), int32(uint32(b))
			var r uint32
			switch in.Op {
			case OpI32Add:
				r = uint32(x + y)
			case OpI32Sub:
				r = uint32(x - y)
			case OpI32Mul:
				r = uint32(x * y)
			case OpI32DivS:
				if y == 0 {
					return 0, false, ErrDivByZero
				}
				r = uint32(x / y)
			case OpI32And:
				r = uint32(x & y)
			case OpI32Or:
				r = uint32(x | y)
			case OpI32Xor:
				r = uint32(x ^ y)
			case OpI32Shl:
				r = uint32(x << (uint32(y) & 31))
			case OpI32ShrU:
				r = uint32(uint32(x) >> (uint32(y) & 31))
			case OpI32Eq:
				if x == y {
					r = 1
				}
			case OpI32LtS:
				if x < y {
					r = 1
				}
			case OpI32GtS:
				if x > y {
					r = 1
				}
			}
			vm.push(uint64(r))

		case OpI64Add, OpI64Mul, OpI64Shl:
			a, b, e := vm.pop2()
			if e != nil {
				return 0, false, e
			}
			switch in.Op {
			case OpI64Add:
				vm.push(a + b)
			case OpI64Mul:
				vm.push(a * b)
			case OpI64Shl:
				vm.push(a << (b & 63))
			}

		// floats
		case OpF32Add, OpF32Mul, OpF32Div:
			a, b, e := vm.pop2()
			if e != nil {
				return 0, false, e
			}
			x, y := math.Float32frombits(uint32(a)), math.Float32frombits(uint32(b))
			var r float32
			switch in.Op {
			case OpF32Add:
				r = x + y
			case OpF32Mul:
				r = x * y
			case OpF32Div:
				r = x / y
			}
			vm.push(uint64(math.Float32bits(r)))
		case OpF64Add, OpF64Sub, OpF64Mul, OpF64Div, OpF64Lt, OpF64Gt:
			a, b, e := vm.pop2()
			if e != nil {
				return 0, false, e
			}
			x, y := math.Float64frombits(a), math.Float64frombits(b)
			switch in.Op {
			case OpF64Add:
				vm.push(math.Float64bits(x + y))
			case OpF64Sub:
				vm.push(math.Float64bits(x - y))
			case OpF64Mul:
				vm.push(math.Float64bits(x * y))
			case OpF64Div:
				vm.push(math.Float64bits(x / y))
			case OpF64Lt:
				if x < y {
					vm.push(1)
				} else {
					vm.push(0)
				}
			case OpF64Gt:
				if x > y {
					vm.push(1)
				} else {
					vm.push(0)
				}
			}
		case OpF64Sqrt:
			a, e := vm.pop()
			if e != nil {
				return 0, false, e
			}
			vm.push(math.Float64bits(math.Sqrt(math.Float64frombits(a))))
		case OpI32WrapI64:
			a, e := vm.pop()
			if e != nil {
				return 0, false, e
			}
			vm.push(uint64(uint32(a)))
		case OpF64ConvertI32S:
			a, e := vm.pop()
			if e != nil {
				return 0, false, e
			}
			vm.push(math.Float64bits(float64(int32(uint32(a)))))

		// memory
		case OpI32Load, OpI64Load, OpF32Load, OpF64Load, OpI32Load8U:
			a, e := vm.pop()
			if e != nil {
				return 0, false, e
			}
			addr := int64(int32(uint32(a))) + int64(in.Imm)
			size := 4
			switch in.Op {
			case OpI64Load, OpF64Load:
				size = 8
			case OpI32Load8U:
				size = 1
			}
			v, e := vm.load(addr, size)
			if e != nil {
				return 0, false, e
			}
			vm.push(v)
		case OpI32Store, OpI64Store, OpF32Store, OpF64Store, OpI32Store8:
			v, e := vm.pop()
			if e != nil {
				return 0, false, e
			}
			a, e := vm.pop()
			if e != nil {
				return 0, false, e
			}
			addr := int64(int32(uint32(a))) + int64(in.Imm)
			size := 4
			switch in.Op {
			case OpI64Store, OpF64Store:
				size = 8
			case OpI32Store8:
				size = 1
			}
			if e := vm.store(addr, size, v); e != nil {
				return 0, false, e
			}
		case OpMemoryGrow:
			pages, e := vm.pop()
			if e != nil {
				return 0, false, e
			}
			old := len(vm.mem) / 65536
			vm.mem = append(vm.mem, make([]byte, int(uint32(pages))*65536)...)
			vm.push(uint64(uint32(old)))
		case OpMemoryCopy:
			n, e := vm.pop()
			if e != nil {
				return 0, false, e
			}
			src, dst, e := vm.pop2()
			if e != nil {
				return 0, false, e
			}
			ln := int64(uint32(n))
			if err := vm.checkMem(int64(uint32(src)), ln); err != nil {
				return 0, false, err
			}
			if err := vm.checkMem(int64(uint32(dst)), ln); err != nil {
				return 0, false, err
			}
			copy(vm.mem[uint32(dst):int64(uint32(dst))+ln], vm.mem[uint32(src):int64(uint32(src))+ln])

		// control
		case OpBlock, OpLoop:
			// counted structural markers
		case OpBr:
			pc = int(in.Imm)
			continue
		case OpBrIf:
			c, e := vm.pop()
			if e != nil {
				return 0, false, e
			}
			if c != 0 {
				pc = int(in.Imm)
				continue
			}
		case OpBrTable:
			idx, e := vm.pop()
			if e != nil {
				return 0, false, e
			}
			tbl := f.Tables[in.Imm]
			i := int(uint32(idx))
			if i >= len(tbl)-1 {
				i = len(tbl) - 1 // last entry = default
			}
			pc = int(tbl[i])
			continue
		case OpIf:
			c, e := vm.pop()
			if e != nil {
				return 0, false, e
			}
			if c == 0 {
				pc = int(in.Imm)
				continue
			}
		case OpCall:
			callee := int(in.Imm)
			ret, oof, e := vm.callWithStackArgs(callee, depth)
			if e != nil || oof {
				return 0, oof, e
			}
			vm.push(ret)
		case OpCallIndirect:
			ti, e := vm.pop()
			if e != nil {
				return 0, false, e
			}
			i := int(uint32(ti))
			if i >= len(vm.prog.Table) {
				return 0, false, ErrBadFunction
			}
			ret, oof, e := vm.callWithStackArgs(int(vm.prog.Table[i]), depth)
			if e != nil || oof {
				return 0, oof, e
			}
			vm.push(ret)
		case OpReturn, OpEnd:
			if len(vm.stack) > 0 {
				v, _ := vm.pop()
				return v, false, nil
			}
			return 0, false, nil

		// host (simulated WASI)
		case OpWasiFdRead, OpWasiFdWrite:
			n, e := vm.pop()
			if e != nil {
				return 0, false, e
			}
			vm.wasiIO += int64(uint32(n))
			vm.push(uint64(uint32(n)))

		default:
			return 0, false, fmt.Errorf("wasmvm: unimplemented opcode %s", in.Op.Name())
		}
		pc++
	}
	return 0, false, nil
}

// callWithStackArgs pops the callee's parameters off the operand stack and
// invokes it.
func (vm *VM) callWithStackArgs(fi, depth int) (uint64, bool, error) {
	if fi < 0 || fi >= len(vm.prog.Funcs) {
		return 0, false, ErrBadFunction
	}
	np := vm.prog.Funcs[fi].NumParams
	if len(vm.stack) < np {
		return 0, false, ErrStackUnderflow
	}
	locals := make([]uint64, np, np+8)
	copy(locals, vm.stack[len(vm.stack)-np:])
	vm.stack = vm.stack[:len(vm.stack)-np]
	return vm.call(fi, locals, depth+1)
}
