package wasmvm

import (
	"fmt"
	"math/rand"
)

// Benchmark program generators in the style of each suite of the paper's
// dataset (§4): numerical float kernels (Polybench), integer crypto rounds
// (libsodium), mixed embedded code (MiBench), vision/ML convolutions
// (Cortex Suite / SDVBS), and interpreter-dispatch loops (CPython on WASI).
// Generated programs are deterministic given the rng and size.

// builder assembles one function body with two-pass branch patching.
type builder struct {
	ins    []Instr
	tables [][]int32
}

func (b *builder) emit(op Opcode, imm int32) int {
	b.ins = append(b.ins, Instr{Op: op, Imm: imm})
	return len(b.ins) - 1
}

func (b *builder) emitF(op Opcode, f float64) int {
	b.ins = append(b.ins, Instr{Op: op, F: f})
	return len(b.ins) - 1
}

func (b *builder) constI(v int32)   { b.emit(OpI32Const, v) }
func (b *builder) constF(v float64) { b.emitF(OpF64Const, v) }
func (b *builder) get(l int)        { b.emit(OpLocalGet, int32(l)) }
func (b *builder) set(l int)        { b.emit(OpLocalSet, int32(l)) }

// forRange emits `for local = 0; local < n; local++ { body }`.
func (b *builder) forRange(local int, n int32, body func()) {
	b.constI(0)
	b.set(local)
	b.emit(OpLoop, 0)
	start := len(b.ins)
	body()
	// local++
	b.get(local)
	b.constI(1)
	b.emit(OpI32Add, 0)
	b.set(local)
	// local < n ?
	b.get(local)
	b.constI(n)
	b.emit(OpI32LtS, 0)
	b.emit(OpBrIf, int32(start))
}

// fn finalizes the function.
func (b *builder) fn(name string, params, locals int) Function {
	b.emit(OpEnd, 0)
	return Function{
		Name: name, NumParams: params, NumLocals: params + locals,
		Body: b.ins, Tables: b.tables,
	}
}

// GenPolybench builds an n x n f64 matrix-multiply kernel (the shape of
// Polybench's gemm). size scales n.
func GenPolybench(rng *rand.Rand, size int) *Program {
	n := int32(4 + size%12)
	stride := n * 8
	aBase, bBase, cBase := int32(0), n*stride, 2*n*stride
	b := &builder{}
	// locals: 0=i 1=j 2=k 3=addr scratch
	b.forRange(0, n, func() {
		b.forRange(1, n, func() {
			b.forRange(2, n, func() {
				// C[i*stride + j*8] += A[i*stride+k*8] * B[k*stride+j*8]
				addr2 := func(base int32, row, col int) {
					b.get(row)
					b.constI(stride)
					b.emit(OpI32Mul, 0)
					b.get(col)
					b.constI(8)
					b.emit(OpI32Mul, 0)
					b.emit(OpI32Add, 0)
					b.constI(base)
					b.emit(OpI32Add, 0)
				}
				addr2(cBase, 0, 1) // address for the final store
				addr2(cBase, 0, 1)
				b.emit(OpF64Load, 0)
				addr2(aBase, 0, 2)
				b.emit(OpF64Load, 0)
				addr2(bBase, 2, 1)
				b.emit(OpF64Load, 0)
				b.emit(OpF64Mul, 0)
				b.emit(OpF64Add, 0)
				b.emit(OpF64Store, 0)
			})
		})
	})
	main := b.fn("gemm", 0, 4)
	return &Program{Funcs: []Function{main}, MemSize: int(3*n*stride) + 64}
}

// GenLibsodium builds an ARX (add-rotate-xor) round loop over a 16-word
// state, the shape of ChaCha/Salsa cores. size scales the round count.
func GenLibsodium(rng *rand.Rand, size int) *Program {
	rounds := int32(64 + 16*(size%16))
	b := &builder{}
	// locals: 0=round counter, 1..4 = state words
	for l := 1; l <= 4; l++ {
		b.constI(int32(rng.Uint32()))
		b.set(l)
	}
	quarter := func(x, y int, rot int32) {
		// x = (x + y); x ^= rotl(x, rot) approximated with shl/shr_u/or
		b.get(x)
		b.get(y)
		b.emit(OpI32Add, 0)
		b.set(x)
		b.get(x)
		b.get(x)
		b.constI(rot)
		b.emit(OpI32Shl, 0)
		b.get(x)
		b.constI(32 - rot)
		b.emit(OpI32ShrU, 0)
		b.emit(OpI32Or, 0)
		b.emit(OpI32Xor, 0)
		b.set(x)
	}
	b.forRange(0, rounds, func() {
		quarter(1, 2, 7)
		quarter(2, 3, 9)
		quarter(3, 4, 13)
		quarter(4, 1, 18)
	})
	b.get(1)
	main := b.fn("arx", 0, 5)
	return &Program{Funcs: []Function{main}, MemSize: 256}
}

// GenMibench builds a mixed embedded-style workload: a byte-table
// transform with data-dependent branches and block copies (the shape of
// MiBench's susan/CRC/dijkstra mix). size scales the element count.
func GenMibench(rng *rand.Rand, size int) *Program {
	n := int32(128 + 32*(size%16))
	b := &builder{}
	// memory: [0,256) lookup table, [256, 256+n) data, [4096, ...) copy dst
	// locals: 0=i 1=acc 2=tmp
	b.forRange(0, n, func() {
		// tmp = table[data[i]]
		b.get(0)
		b.constI(256)
		b.emit(OpI32Add, 0)
		b.emit(OpI32Load8U, 0)
		b.emit(OpI32Load8U, 0) // table lookup: data byte indexes table at 0
		b.set(2)
		// if tmp > 127 { acc += tmp } else { acc ^= tmp }
		b.get(2)
		b.constI(127)
		b.emit(OpI32GtS, 0)
		jIf := b.emit(OpIf, 0)
		b.get(1)
		b.get(2)
		b.emit(OpI32Add, 0)
		b.set(1)
		jBr := b.emit(OpBr, 0)
		b.ins[jIf].Imm = int32(len(b.ins))
		b.get(1)
		b.get(2)
		b.emit(OpI32Xor, 0)
		b.set(1)
		b.ins[jBr].Imm = int32(len(b.ins))
		// store transformed byte
		b.get(0)
		b.constI(4096)
		b.emit(OpI32Add, 0)
		b.get(2)
		b.emit(OpI32Store8, 0)
	})
	// final block copy of the transformed buffer
	b.constI(4096)
	b.constI(8192)
	b.constI(n)
	b.emit(OpMemoryCopy, 0)
	b.get(1)
	main := b.fn("transform", 0, 3)
	return &Program{Funcs: []Function{main}, MemSize: 16384}
}

// GenVision builds a 3x3 f64 convolution with thresholding plus an f32
// smoothing pass, the shape of SDVBS/Cortex vision kernels. size scales
// the image dimension. The accumulator lives in a memory scratch slot to
// keep the operand stack balanced across the structured loops.
func GenVision(rng *rand.Rand, size int) *Program {
	w := int32(12 + 4*(size%10))
	stride := w * 8 // f64 image
	srcBase := int32(64)
	dstBase := srcBase + w*stride
	f32Base := dstBase + w*4 // f32 plane for the smoothing pass
	const accAddr = int32(0) // f64 accumulator scratch
	b := &builder{}
	// locals: 0=y 1=x 2=ky 3=kx 4=i
	pixelAddr := func(base int32, row, col int, scale int32) {
		b.get(row)
		b.get(2)
		b.emit(OpI32Add, 0)
		b.constI(stride)
		b.emit(OpI32Mul, 0)
		b.get(col)
		b.get(3)
		b.emit(OpI32Add, 0)
		b.constI(scale)
		b.emit(OpI32Mul, 0)
		b.emit(OpI32Add, 0)
		b.constI(base)
		b.emit(OpI32Add, 0)
	}
	b.forRange(0, w-2, func() {
		b.forRange(1, w-2, func() {
			// acc = 0
			b.constI(accAddr)
			b.constF(0)
			b.emit(OpF64Store, 0)
			b.forRange(2, 3, func() {
				b.forRange(3, 3, func() {
					// acc += pixel * pixel
					b.constI(accAddr)
					b.constI(accAddr)
					b.emit(OpF64Load, 0)
					pixelAddr(srcBase, 0, 1, 8)
					b.emit(OpF64Load, 0)
					pixelAddr(srcBase, 0, 1, 8)
					b.emit(OpF64Load, 0)
					b.emit(OpF64Mul, 0)
					b.emit(OpF64Add, 0)
					b.emit(OpF64Store, 0)
				})
			})
			// if sqrt(acc) > 4: dst[y*4 + x] = 1
			b.constI(accAddr)
			b.emit(OpF64Load, 0)
			b.emit(OpF64Sqrt, 0)
			b.constF(4)
			b.emit(OpF64Gt, 0)
			jIf := b.emit(OpIf, 0)
			b.get(0)
			b.constI(4)
			b.emit(OpI32Mul, 0)
			b.get(1)
			b.emit(OpI32Add, 0)
			b.constI(dstBase)
			b.emit(OpI32Add, 0)
			b.constI(1)
			b.emit(OpI32Store, 0)
			b.ins[jIf].Imm = int32(len(b.ins))
		})
	})
	// f32 smoothing pass: plane[i] = plane[i] + plane[i+1] (running sum),
	// with a multiply/divide every iteration to exercise the f32 units.
	b.forRange(4, w-1, func() {
		idx := func(off int32) {
			b.get(4)
			b.constI(4)
			b.emit(OpI32Mul, 0)
			b.constI(f32Base + off*4)
			b.emit(OpI32Add, 0)
		}
		idx(0) // store address
		idx(0)
		b.emit(OpF32Load, 0)
		idx(1)
		b.emit(OpF32Load, 0)
		b.emit(OpF32Add, 0)
		idx(1)
		b.emit(OpF32Load, 0)
		b.emit(OpF32Mul, 0)
		idx(0)
		b.emit(OpF32Load, 0)
		b.emit(OpF32Div, 0)
		b.emit(OpF32Store, 0)
	})
	// return converted loop counter (exercises i64/i32 conversion path)
	b.get(4)
	main := b.fn("conv", 0, 5)
	prog := &Program{Funcs: []Function{main}, MemSize: int(f32Base+w*4) + 64}
	// seed the image planes with pseudo-random data
	mem := make([]byte, prog.MemSize)
	for i := range mem {
		mem[i] = byte(rng.Intn(256))
	}
	prog.initMem = mem
	return prog
}

// GenPython builds an interpreter-dispatch loop: a bytecode buffer in
// memory drives a br_table into handlers that perform small integer ops
// and indirect calls — the shape of CPython running under WASI. size
// scales the bytecode length.
func GenPython(rng *rand.Rand, size int) *Program {
	n := int32(64 + 16*(size%16))
	// helper functions called indirectly by handlers
	mkHelper := func(name string, op Opcode) Function {
		hb := &builder{}
		hb.get(0)
		hb.get(1)
		hb.emit(op, 0)
		return hb.fn(name, 2, 0)
	}
	add := mkHelper("add", OpI32Add)
	mul := mkHelper("mul", OpI32Mul)
	xor := mkHelper("xor", OpI32Xor)

	b := &builder{}
	// locals: 0=pc 1=acc 2=op
	b.forRange(0, n, func() {
		// op = code[pc] & 3
		b.get(0)
		b.emit(OpI32Load8U, 0)
		b.constI(3)
		b.emit(OpI32And, 0)
		b.set(2)
		b.get(2)
		jTable := b.emit(OpBrTable, 0)
		// handler 0: acc = add(acc, pc) via call_indirect
		h0 := int32(len(b.ins))
		b.get(1)
		b.get(0)
		b.constI(0)
		b.emit(OpCallIndirect, 0)
		b.set(1)
		j0 := b.emit(OpBr, 0)
		// handler 1: acc = mul(acc, 3) via direct call
		h1 := int32(len(b.ins))
		b.get(1)
		b.constI(3)
		b.emit(OpCall, 2) // funcs[2] = mul
		b.set(1)
		j1 := b.emit(OpBr, 0)
		// handler 2: acc = xor(acc, 0x5a) indirect
		h2 := int32(len(b.ins))
		b.get(1)
		b.constI(0x5a)
		b.constI(2)
		b.emit(OpCallIndirect, 0)
		b.set(1)
		j2 := b.emit(OpBr, 0)
		// handler 3 (default): simulated wasi write of 1 byte
		h3 := int32(len(b.ins))
		b.constI(1)
		b.emit(OpWasiFdWrite, 0)
		b.emit(OpDrop, 0)
		end := int32(len(b.ins))
		b.ins[j0].Imm = end
		b.ins[j1].Imm = end
		b.ins[j2].Imm = end
		b.tables = append(b.tables, []int32{h0, h1, h2, h3})
		b.ins[jTable].Imm = int32(len(b.tables) - 1)
	})
	b.get(1)
	main := b.fn("dispatch", 0, 3)
	prog := &Program{
		Funcs:   []Function{main, add, mul, xor},
		Table:   []int32{1, 2, 3}, // indirect slots: add, mul, xor
		MemSize: int(n) + 64,
		Start:   0,
	}
	// random "bytecode"
	mem := make([]byte, prog.MemSize)
	for i := range mem {
		mem[i] = byte(rng.Intn(256))
	}
	prog.initMem = mem
	return prog
}

// Generate builds a benchmark program in the style of the named suite.
// Supported suites: polybench, libsodium, mibench, cortex, sdvbs, python.
func Generate(suite string, rng *rand.Rand, size int) (*Program, error) {
	switch suite {
	case "polybench":
		return GenPolybench(rng, size), nil
	case "libsodium":
		return GenLibsodium(rng, size), nil
	case "mibench":
		return GenMibench(rng, size), nil
	case "cortex", "sdvbs":
		return GenVision(rng, size), nil
	case "python":
		return GenPython(rng, size), nil
	}
	return nil, fmt.Errorf("wasmvm: unknown suite %q", suite)
}

// Profile runs prog with the given fuel and returns the normalized
// opcode-frequency mix over the counted instruction set. The program may
// run out of fuel; the partial counts still characterize its steady-state
// mix (benchmarks are loop-dominated).
func Profile(prog *Program, fuel int64) ([]float64, error) {
	vm := NewVM(prog)
	res, err := vm.Run(fuel)
	if err != nil {
		return nil, err
	}
	mix := make([]float64, NumCounted)
	var total float64
	for i, c := range res.Counts {
		mix[i] = float64(c)
		total += float64(c)
	}
	if total == 0 {
		return nil, fmt.Errorf("wasmvm: program executed no counted instructions")
	}
	for i := range mix {
		mix[i] /= total
	}
	return mix, nil
}
