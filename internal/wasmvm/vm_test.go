package wasmvm

import (
	"math"
	"math/rand"
	"testing"
)

// prog wraps a single-function program.
func prog(f Function, memSize int) *Program {
	return &Program{Funcs: []Function{f}, MemSize: memSize}
}

// run executes and fails the test on error.
func run(t *testing.T, p *Program, fuel int64, args ...int32) Result {
	t.Helper()
	res, err := NewVM(p).Run(fuel, args...)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestArithmeticGolden(t *testing.T) {
	// (7 + 5) * 3 - 6 = 30
	b := &builder{}
	b.constI(7)
	b.constI(5)
	b.emit(OpI32Add, 0)
	b.constI(3)
	b.emit(OpI32Mul, 0)
	b.constI(6)
	b.emit(OpI32Sub, 0)
	res := run(t, prog(b.fn("f", 0, 0), 0), 0)
	if int32(res.Return) != 30 {
		t.Fatalf("got %d want 30", int32(res.Return))
	}
}

func TestDivisionAndSignedness(t *testing.T) {
	b := &builder{}
	b.constI(-9)
	b.constI(2)
	b.emit(OpI32DivS, 0)
	res := run(t, prog(b.fn("f", 0, 0), 0), 0)
	if int32(res.Return) != -4 {
		t.Fatalf("(-9)/2 = %d want -4", int32(res.Return))
	}
}

func TestDivByZeroErrors(t *testing.T) {
	b := &builder{}
	b.constI(1)
	b.constI(0)
	b.emit(OpI32DivS, 0)
	if _, err := NewVM(prog(b.fn("f", 0, 0), 0)).Run(0); err != ErrDivByZero {
		t.Fatalf("got %v want ErrDivByZero", err)
	}
}

func TestFloatGolden(t *testing.T) {
	// sqrt(3*3 + 4*4) = 5 via f64 ops
	b := &builder{}
	b.constF(3)
	b.constF(3)
	b.emit(OpF64Mul, 0)
	b.constF(4)
	b.constF(4)
	b.emit(OpF64Mul, 0)
	b.emit(OpF64Add, 0)
	b.emit(OpF64Sqrt, 0)
	res := run(t, prog(b.fn("f", 0, 0), 0), 0)
	if got := math.Float64frombits(res.Return); math.Abs(got-5) > 1e-15 {
		t.Fatalf("got %v want 5", got)
	}
}

func TestLoopSum(t *testing.T) {
	// sum 0..9 = 45 using forRange
	b := &builder{}
	b.forRange(0, 10, func() {
		b.get(1)
		b.get(0)
		b.emit(OpI32Add, 0)
		b.set(1)
	})
	b.get(1)
	res := run(t, prog(b.fn("sum", 0, 2), 0), 0)
	if int32(res.Return) != 45 {
		t.Fatalf("got %d want 45", int32(res.Return))
	}
	if res.Counts[OpLoop] != 1 || res.Counts[OpBrIf] != 10 {
		t.Fatalf("loop counts: loop=%d br_if=%d", res.Counts[OpLoop], res.Counts[OpBrIf])
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	// store i64 at 8, load it back
	b := &builder{}
	b.constI(8)
	b.constI(0)
	b.emit(OpI64Shl, 0) // push 0 as i64 via shl identity? simpler: store i32
	b.emit(OpDrop, 0)
	b.constI(8)
	b.constI(-123456)
	b.emit(OpI32Store, 0)
	b.constI(8)
	b.emit(OpI32Load, 0)
	res := run(t, prog(b.fn("mem", 0, 0), 64), 0)
	if int32(res.Return) != -123456 {
		t.Fatalf("got %d want -123456", int32(res.Return))
	}
}

func TestMemoryBoundsChecked(t *testing.T) {
	b := &builder{}
	b.constI(1 << 20)
	b.emit(OpI32Load, 0)
	if _, err := NewVM(prog(b.fn("oob", 0, 0), 64)).Run(0); err != ErrOOB {
		t.Fatalf("got %v want ErrOOB", err)
	}
	// negative address
	b2 := &builder{}
	b2.constI(-4)
	b2.emit(OpI32Load, 0)
	if _, err := NewVM(prog(b2.fn("neg", 0, 0), 64)).Run(0); err != ErrOOB {
		t.Fatalf("got %v want ErrOOB for negative address", err)
	}
}

func TestIfElseBothBranches(t *testing.T) {
	mk := func(c int32) int32 {
		b := &builder{}
		b.constI(c)
		jIf := b.emit(OpIf, 0)
		b.constI(100)
		jEnd := b.emit(OpBr, 0)
		b.ins[jIf].Imm = int32(len(b.ins))
		b.constI(200)
		b.ins[jEnd].Imm = int32(len(b.ins))
		res := run(t, prog(b.fn("if", 0, 0), 0), 0)
		return int32(res.Return)
	}
	if mk(1) != 100 || mk(0) != 200 {
		t.Fatalf("if/else wrong: %d %d", mk(1), mk(0))
	}
}

func TestCallAndReturn(t *testing.T) {
	// callee: square(x) = x*x ; main: square(12) = 144
	cb := &builder{}
	cb.get(0)
	cb.get(0)
	cb.emit(OpI32Mul, 0)
	square := cb.fn("square", 1, 0)
	mb := &builder{}
	mb.constI(12)
	mb.emit(OpCall, 1)
	main := mb.fn("main", 0, 0)
	p := &Program{Funcs: []Function{main, square}, MemSize: 0}
	res := run(t, p, 0)
	if int32(res.Return) != 144 {
		t.Fatalf("got %d want 144", int32(res.Return))
	}
	if res.Counts[OpCall] != 1 {
		t.Fatal("call not counted")
	}
}

func TestCallIndirect(t *testing.T) {
	cb := &builder{}
	cb.get(0)
	cb.constI(1)
	cb.emit(OpI32Add, 0)
	inc := cb.fn("inc", 1, 0)
	mb := &builder{}
	mb.constI(41)
	mb.constI(0) // table slot 0
	mb.emit(OpCallIndirect, 0)
	main := mb.fn("main", 0, 0)
	p := &Program{Funcs: []Function{main, inc}, Table: []int32{1}}
	res := run(t, p, 0)
	if int32(res.Return) != 42 {
		t.Fatalf("got %d want 42", int32(res.Return))
	}
	// bad table index errors
	mb2 := &builder{}
	mb2.constI(9)
	mb2.emit(OpCallIndirect, 0)
	p2 := &Program{Funcs: []Function{mb2.fn("main", 0, 0), inc}, Table: []int32{1}}
	if _, err := NewVM(p2).Run(0); err != ErrBadFunction {
		t.Fatalf("got %v want ErrBadFunction", err)
	}
}

func TestRecursionDepthLimit(t *testing.T) {
	// f() { return f() } — infinite recursion must hit the depth limit.
	b := &builder{}
	b.emit(OpCall, 0)
	f := b.fn("f", 0, 0)
	if _, err := NewVM(&Program{Funcs: []Function{f}}).Run(0); err != ErrCallDepth {
		t.Fatalf("got %v want ErrCallDepth", err)
	}
}

func TestFuelExhaustion(t *testing.T) {
	// infinite loop must stop via fuel, flagged OutOfFuel.
	b := &builder{}
	b.emit(OpLoop, 0)
	start := len(b.ins)
	b.constI(1)
	b.emit(OpDrop, 0)
	b.emit(OpBr, int32(start))
	res, err := NewVM(prog(b.fn("spin", 0, 0), 0)).Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OutOfFuel {
		t.Fatal("expected OutOfFuel")
	}
	if res.Steps > 1001 {
		t.Fatalf("ran %d steps past fuel", res.Steps)
	}
}

func TestStackUnderflowDetected(t *testing.T) {
	b := &builder{}
	b.emit(OpI32Add, 0)
	if _, err := NewVM(prog(b.fn("bad", 0, 0), 0)).Run(0); err != ErrStackUnderflow {
		t.Fatalf("got %v want ErrStackUnderflow", err)
	}
}

func TestSelect(t *testing.T) {
	mk := func(c int32) int32 {
		b := &builder{}
		b.constI(10)
		b.constI(20)
		b.constI(c)
		b.emit(OpSelect, 0)
		return int32(run(t, prog(b.fn("sel", 0, 0), 0), 0).Return)
	}
	// WebAssembly select: condition != 0 keeps the FIRST (deeper) operand.
	if mk(1) != 10 || mk(0) != 20 {
		t.Fatalf("select wrong: %d %d", mk(1), mk(0))
	}
}

func TestBrTableDispatch(t *testing.T) {
	// br_table selecting one of three constants; index 7 hits the default.
	mk := func(idx int32) int32 {
		b := &builder{}
		b.constI(idx)
		jT := b.emit(OpBrTable, 0)
		h0 := int32(len(b.ins))
		b.constI(100)
		j0 := b.emit(OpBr, 0)
		h1 := int32(len(b.ins))
		b.constI(200)
		j1 := b.emit(OpBr, 0)
		hd := int32(len(b.ins))
		b.constI(999)
		end := int32(len(b.ins))
		b.ins[j0].Imm = end
		b.ins[j1].Imm = end
		b.tables = append(b.tables, []int32{h0, h1, hd})
		b.ins[jT].Imm = 0
		return int32(run(t, prog(b.fn("bt", 0, 0), 0), 0).Return)
	}
	if mk(0) != 100 || mk(1) != 200 || mk(7) != 999 {
		t.Fatalf("br_table: %d %d %d", mk(0), mk(1), mk(7))
	}
}

func TestMemoryCopyAndGrow(t *testing.T) {
	b := &builder{}
	// write a byte, copy region, read from destination
	b.constI(0)
	b.constI(77)
	b.emit(OpI32Store8, 0)
	b.constI(0) // src ... note operand order: push src, dst, n
	b.constI(32)
	b.constI(8)
	b.emit(OpMemoryCopy, 0)
	b.constI(1)
	b.emit(OpMemoryGrow, 0)
	b.emit(OpDrop, 0)
	b.constI(32)
	b.emit(OpI32Load8U, 0)
	res := run(t, prog(b.fn("cp", 0, 0), 64), 0)
	if int32(res.Return) != 77 {
		t.Fatalf("copy got %d want 77", int32(res.Return))
	}
}

func TestWasiCounted(t *testing.T) {
	b := &builder{}
	b.constI(100)
	b.emit(OpWasiFdWrite, 0)
	b.emit(OpDrop, 0)
	b.constI(50)
	b.emit(OpWasiFdRead, 0)
	res := run(t, prog(b.fn("io", 0, 0), 0), 0)
	if res.Counts[OpWasiFdWrite] != 1 || res.Counts[OpWasiFdRead] != 1 {
		t.Fatal("wasi ops not counted")
	}
	if int32(res.Return) != 50 {
		t.Fatalf("fd_read returned %d", int32(res.Return))
	}
}

func TestCountsDeterministic(t *testing.T) {
	rng1 := rand.New(rand.NewSource(9))
	rng2 := rand.New(rand.NewSource(9))
	p1 := GenPython(rng1, 5)
	p2 := GenPython(rng2, 5)
	r1 := run(t, p1, 100000)
	r2 := run(t, p2, 100000)
	for op, c := range r1.Counts {
		if r2.Counts[op] != c {
			t.Fatalf("nondeterministic counts at %s: %d vs %d", Opcode(op).Name(), c, r2.Counts[op])
		}
	}
}

func TestInitialMemorySeed(t *testing.T) {
	b := &builder{}
	b.constI(3)
	b.emit(OpI32Load8U, 0)
	f := b.fn("rd", 0, 0)
	p := prog(f, 16)
	p.SetInitialMemory([]byte{0, 0, 0, 42})
	res := run(t, p, 0)
	if res.Return != 42 {
		t.Fatalf("initial memory not seeded: %d", res.Return)
	}
}

func TestOpcodeNames(t *testing.T) {
	if OpI32Add.Name() != "i32.add" || OpWasiFdWrite.Name() != "wasi.fd_write" {
		t.Fatal("opcode names wrong")
	}
	if Opcode(200).Name() == "" {
		t.Fatal("unknown opcode name empty")
	}
	if len(CountedNames()) != NumCounted {
		t.Fatal("counted names length")
	}
}
