package wasmvm

import (
	"math"
	"math/rand"
	"testing"
)

// groupShare sums the mix over an opcode range [lo,hi).
func groupShare(mix []float64, lo, hi Opcode) float64 {
	var s float64
	for op := lo; op < hi; op++ {
		s += mix[op]
	}
	return s
}

func TestGenerateAllSuites(t *testing.T) {
	for _, suite := range []string{"polybench", "libsodium", "mibench", "cortex", "sdvbs", "python"} {
		rng := rand.New(rand.NewSource(1))
		p, err := Generate(suite, rng, 3)
		if err != nil {
			t.Fatalf("%s: %v", suite, err)
		}
		res, err := NewVM(p).Run(500_000)
		if err != nil {
			t.Fatalf("%s: %v", suite, err)
		}
		if res.Steps == 0 {
			t.Fatalf("%s executed nothing", suite)
		}
	}
	if _, err := Generate("nope", rand.New(rand.NewSource(1)), 1); err == nil {
		t.Fatal("unknown suite accepted")
	}
}

func TestSuiteMixesCharacteristic(t *testing.T) {
	// Each generator's executed instruction mix must have the signature of
	// its suite — this is what makes VM-derived features informative.
	profile := func(suite string) []float64 {
		rng := rand.New(rand.NewSource(7))
		p, err := Generate(suite, rng, 4)
		if err != nil {
			t.Fatal(err)
		}
		mix, err := Profile(p, 300_000)
		if err != nil {
			t.Fatal(err)
		}
		return mix
	}
	poly := profile("polybench")
	sodium := profile("libsodium")
	python := profile("python")
	vision := profile("cortex")
	mibench := profile("mibench")

	floatShare := func(m []float64) float64 { return groupShare(m, OpF32Add, OpF64Sqrt+1) }
	// Polybench: float-heavy, much more than libsodium.
	if floatShare(poly) < 3*floatShare(sodium) {
		t.Fatalf("polybench float share %.3f not >> libsodium %.3f",
			floatShare(poly), floatShare(sodium))
	}
	// Libsodium: integer-ALU dominated.
	ialu := func(m []float64) float64 { return groupShare(m, OpI32Add, OpI64Shl+1) }
	if ialu(sodium) < 0.3 {
		t.Fatalf("libsodium integer share %.3f < 0.3", ialu(sodium))
	}
	// Python: only suite with call_indirect and br_table dispatch.
	if python[OpBrTable] == 0 || python[OpCallIndirect] == 0 {
		t.Fatal("python dispatch missing br_table/call_indirect")
	}
	if poly[OpCallIndirect] != 0 || sodium[OpBrTable] != 0 {
		t.Fatal("non-python suites should not use indirect dispatch")
	}
	// Vision: uses both f64 conv and f32 smoothing plus sqrt.
	if vision[OpF64Sqrt] == 0 || vision[OpF32Add] == 0 {
		t.Fatal("vision kernel missing f64.sqrt / f32.add")
	}
	// MiBench: byte loads and branches.
	if mibench[OpI32Load8U] == 0 || mibench[OpIf] == 0 || mibench[OpMemoryCopy] == 0 {
		t.Fatal("mibench missing byte/branch/copy signature")
	}
}

func TestProfileNormalized(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p, _ := Generate("polybench", rng, 2)
	mix, err := Profile(p, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range mix {
		if v < 0 {
			t.Fatal("negative frequency")
		}
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("mix sums to %v", sum)
	}
}

func TestSizeScalesWork(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	small, _ := Generate("polybench", rng, 0) // n = 4
	rng = rand.New(rand.NewSource(3))
	large, _ := Generate("polybench", rng, 11) // n = 15
	rs, err := NewVM(small).Run(50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := NewVM(large).Run(50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if rl.Steps < 8*rs.Steps {
		t.Fatalf("size scaling weak: %d vs %d steps", rs.Steps, rl.Steps)
	}
}

func TestPolybenchComputesRealGEMM(t *testing.T) {
	// The generated kernel must actually accumulate C += A*B: with zeroed
	// memory the result stays zero; with seeded A/B it changes memory.
	rng := rand.New(rand.NewSource(4))
	p := GenPolybench(rng, 0)
	vm := NewVM(p)
	if _, err := vm.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	allZero := true
	for _, b := range vm.mem {
		if b != 0 {
			allZero = false
			break
		}
	}
	if !allZero {
		t.Fatal("zero inputs produced nonzero output")
	}
	// Seed A and B with 1.0 values: C accumulates n per cell.
	p2 := GenPolybench(rand.New(rand.NewSource(4)), 0)
	mem := make([]byte, p2.MemSize)
	one := [8]byte{0, 0, 0, 0, 0, 0, 0xf0, 0x3f} // float64(1.0) little-endian
	n := 4
	for i := 0; i < 2*n*n; i++ { // A and B planes
		copy(mem[i*8:], one[:])
	}
	p2.SetInitialMemory(mem)
	vm2 := NewVM(p2)
	if _, err := vm2.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	// C[0][0] = sum_k A[0][k]*B[k][0] = n = 4.0
	cBase := 2 * n * n * 8
	var bits uint64
	for i := 7; i >= 0; i-- {
		bits = bits<<8 | uint64(vm2.mem[cBase+i])
	}
	if got := math.Float64frombits(bits); got != 4.0 {
		t.Fatalf("C[0][0] = %v want 4.0", got)
	}
}

func BenchmarkInterpreter(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	p, _ := Generate("libsodium", rng, 8)
	b.ReportAllocs()
	b.ResetTimer()
	var steps int64
	for i := 0; i < b.N; i++ {
		res, err := NewVM(p).Run(1_000_000)
		if err != nil {
			b.Fatal(err)
		}
		steps += res.Steps
	}
	b.ReportMetric(float64(steps)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}
