// Package tsne implements t-distributed Stochastic Neighbor Embedding
// (van der Maaten & Hinton 2008) for projecting Pitot's learned embeddings
// to two dimensions (paper Fig. 7 and Fig. 12a–c). The exact (non
// Barnes-Hut) formulation is used; the embedding tables are small (a few
// hundred rows), so the O(n²) cost is negligible.
package tsne

import (
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Config controls the embedding run.
type Config struct {
	Seed       int64
	Perplexity float64 // effective neighbor count; default 15
	Iters      int     // gradient steps; default 500
	LearnRate  float64 // default 100
	OutDims    int     // default 2
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	if c.Perplexity == 0 {
		c.Perplexity = 15
	}
	if c.Iters == 0 {
		c.Iters = 500
	}
	if c.LearnRate == 0 {
		c.LearnRate = 100
	}
	if c.OutDims == 0 {
		c.OutDims = 2
	}
	return c
}

// Embed projects the rows of x to Config.OutDims dimensions.
func Embed(x *tensor.Matrix, cfg Config) *tensor.Matrix {
	cfg = cfg.Defaults()
	n := x.Rows
	if n == 0 {
		return tensor.New(0, cfg.OutDims)
	}
	p := jointProbabilities(x, cfg.Perplexity)
	rng := rand.New(rand.NewSource(cfg.Seed))

	y := tensor.New(n, cfg.OutDims)
	for i := range y.Data {
		y.Data[i] = rng.NormFloat64() * 1e-2
	}
	vel := tensor.New(n, cfg.OutDims)
	gains := tensor.New(n, cfg.OutDims)
	gains.Fill(1)

	const exaggeration = 4.0
	exaggerationIters := cfg.Iters / 4
	for i := range p.Data {
		p.Data[i] *= exaggeration
	}
	for iter := 0; iter < cfg.Iters; iter++ {
		if iter == exaggerationIters {
			for i := range p.Data {
				p.Data[i] /= exaggeration
			}
		}
		momentum := 0.5
		if iter >= cfg.Iters/2 {
			momentum = 0.8
		}
		grad := gradient(p, y)
		for i := range y.Data {
			// Adaptive per-parameter gains (standard t-SNE trick).
			if (grad.Data[i] > 0) != (vel.Data[i] > 0) {
				gains.Data[i] += 0.2
			} else {
				gains.Data[i] *= 0.8
				if gains.Data[i] < 0.01 {
					gains.Data[i] = 0.01
				}
			}
			vel.Data[i] = momentum*vel.Data[i] - cfg.LearnRate*gains.Data[i]*grad.Data[i]
			y.Data[i] += vel.Data[i]
		}
		centerRows(y)
	}
	return y
}

// centerRows subtracts the column means so the embedding stays centered.
func centerRows(y *tensor.Matrix) {
	means := y.ColSums()
	n := float64(y.Rows)
	for i := 0; i < y.Rows; i++ {
		row := y.Row(i)
		for j := range row {
			row[j] -= means.Data[j] / n
		}
	}
}

// pairwiseSqDist returns the matrix of squared euclidean distances.
func pairwiseSqDist(x *tensor.Matrix) *tensor.Matrix {
	n := x.Rows
	d := tensor.New(n, n)
	for i := 0; i < n; i++ {
		ri := x.Row(i)
		for j := i + 1; j < n; j++ {
			rj := x.Row(j)
			var s float64
			for k, v := range ri {
				diff := v - rj[k]
				s += diff * diff
			}
			d.Set(i, j, s)
			d.Set(j, i, s)
		}
	}
	return d
}

// jointProbabilities computes the symmetrized affinity matrix P with the
// per-point bandwidths found by binary search on perplexity.
func jointProbabilities(x *tensor.Matrix, perplexity float64) *tensor.Matrix {
	n := x.Rows
	d := pairwiseSqDist(x)
	p := tensor.New(n, n)
	logU := math.Log(perplexity)
	for i := 0; i < n; i++ {
		// Binary search beta = 1/(2σ²) to hit the target entropy.
		beta, betaMin, betaMax := 1.0, math.Inf(-1), math.Inf(1)
		var row []float64
		for iter := 0; iter < 64; iter++ {
			row = condProb(d.Row(i), i, beta)
			h := entropy(row)
			diff := h - logU
			if math.Abs(diff) < 1e-5 {
				break
			}
			if diff > 0 {
				betaMin = beta
				if math.IsInf(betaMax, 1) {
					beta *= 2
				} else {
					beta = (beta + betaMax) / 2
				}
			} else {
				betaMax = beta
				if math.IsInf(betaMin, -1) {
					beta /= 2
				} else {
					beta = (beta + betaMin) / 2
				}
			}
		}
		copy(p.Row(i), row)
	}
	// Symmetrize and normalize: P = (P + Pᵀ) / 2n, floored for stability.
	out := tensor.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := (p.At(i, j) + p.At(j, i)) / (2 * float64(n))
			if v < 1e-12 {
				v = 1e-12
			}
			if i == j {
				v = 0
			}
			out.Set(i, j, v)
		}
	}
	return out
}

// condProb returns the conditional distribution p_{j|i} for bandwidth beta.
func condProb(dists []float64, i int, beta float64) []float64 {
	n := len(dists)
	row := make([]float64, n)
	var sum float64
	for j, dv := range dists {
		if j == i {
			continue
		}
		e := math.Exp(-dv * beta)
		row[j] = e
		sum += e
	}
	if sum == 0 {
		// Degenerate: all other points infinitely far; uniform fallback.
		for j := range row {
			if j != i {
				row[j] = 1 / float64(n-1)
			}
		}
		return row
	}
	for j := range row {
		row[j] /= sum
	}
	return row
}

// entropy returns the Shannon entropy of a distribution (natural log).
func entropy(p []float64) float64 {
	var h float64
	for _, v := range p {
		if v > 1e-300 {
			h -= v * math.Log(v)
		}
	}
	return h
}

// gradient computes the exact t-SNE KL gradient.
func gradient(p, y *tensor.Matrix) *tensor.Matrix {
	n := y.Rows
	dims := y.Cols
	// Student-t affinities q_ij ∝ (1+||y_i-y_j||²)⁻¹.
	num := tensor.New(n, n)
	var zSum float64
	for i := 0; i < n; i++ {
		ri := y.Row(i)
		for j := i + 1; j < n; j++ {
			rj := y.Row(j)
			var s float64
			for k := 0; k < dims; k++ {
				diff := ri[k] - rj[k]
				s += diff * diff
			}
			v := 1 / (1 + s)
			num.Set(i, j, v)
			num.Set(j, i, v)
			zSum += 2 * v
		}
	}
	grad := tensor.New(n, dims)
	for i := 0; i < n; i++ {
		ri := y.Row(i)
		gi := grad.Row(i)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			q := num.At(i, j) / zSum
			if q < 1e-12 {
				q = 1e-12
			}
			mult := 4 * (p.At(i, j) - q) * num.At(i, j)
			rj := y.Row(j)
			for k := 0; k < dims; k++ {
				gi[k] += mult * (ri[k] - rj[k])
			}
		}
	}
	return grad
}

// KNNPurity scores how well labels cluster in the embedded space: the mean
// fraction of each point's k nearest neighbors sharing its label. Used to
// verify the qualitative claims of paper Fig. 7 / 12 quantitatively.
func KNNPurity(y *tensor.Matrix, labels []string, k int) float64 {
	idx := make([]int, y.Rows)
	for i := range idx {
		idx[i] = i
	}
	return KNNPuritySubset(y, labels, idx, k)
}

// KNNPuritySubset is KNNPurity averaged only over the points in subset
// (neighbors are still drawn from the full embedding).
func KNNPuritySubset(y *tensor.Matrix, labels []string, subset []int, k int) float64 {
	n := y.Rows
	if n == 0 || k <= 0 || len(subset) == 0 {
		return 0
	}
	d := pairwiseSqDist(y)
	var total float64
	for _, i := range subset {
		type nd struct {
			j    int
			dist float64
		}
		nds := make([]nd, 0, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				nds = append(nds, nd{j, d.At(i, j)})
			}
		}
		// partial selection sort for the k nearest
		kk := k
		if kk > len(nds) {
			kk = len(nds)
		}
		for a := 0; a < kk; a++ {
			best := a
			for b := a + 1; b < len(nds); b++ {
				if nds[b].dist < nds[best].dist {
					best = b
				}
			}
			nds[a], nds[best] = nds[best], nds[a]
		}
		match := 0
		for a := 0; a < kk; a++ {
			if labels[nds[a].j] == labels[i] {
				match++
			}
		}
		total += float64(match) / float64(kk)
	}
	return total / float64(len(subset))
}
