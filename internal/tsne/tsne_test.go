package tsne

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// clusters generates n points around c well-separated centers in dim-D.
func clusters(rng *rand.Rand, n, c, dim int) (*tensor.Matrix, []string) {
	x := tensor.New(n, dim)
	labels := make([]string, n)
	for i := 0; i < n; i++ {
		ci := i % c
		labels[i] = string(rune('A' + ci))
		for j := 0; j < dim; j++ {
			center := 0.0
			if j == ci {
				center = 8.0
			}
			x.Set(i, j, center+0.3*rng.NormFloat64())
		}
	}
	return x, labels
}

func TestEmbedShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, _ := clusters(rng, 30, 3, 5)
	y := Embed(x, Config{Seed: 1, Iters: 100})
	if y.Rows != 30 || y.Cols != 2 {
		t.Fatalf("embed shape %dx%d", y.Rows, y.Cols)
	}
	if y.HasNaN() {
		t.Fatal("NaN in embedding")
	}
}

func TestEmbedEmpty(t *testing.T) {
	y := Embed(tensor.New(0, 4), Config{})
	if y.Rows != 0 || y.Cols != 2 {
		t.Fatal("empty embed wrong shape")
	}
}

func TestEmbedSeparatesClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, labels := clusters(rng, 60, 3, 6)
	y := Embed(x, Config{Seed: 2, Iters: 400, Perplexity: 10})
	purity := KNNPurity(y, labels, 5)
	if purity < 0.9 {
		t.Fatalf("kNN purity %.3f < 0.9: clusters not separated", purity)
	}
}

func TestEmbedDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, _ := clusters(rng, 20, 2, 4)
	a := Embed(x, Config{Seed: 5, Iters: 50})
	b := Embed(x, Config{Seed: 5, Iters: 50})
	if !tensor.Equal(a, b, 0) {
		t.Fatal("same seed produced different embeddings")
	}
}

func TestEmbedCentered(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, _ := clusters(rng, 40, 4, 6)
	y := Embed(x, Config{Seed: 6, Iters: 120})
	sums := y.ColSums()
	for _, s := range sums.Data {
		if math.Abs(s)/float64(y.Rows) > 1e-6 {
			t.Fatalf("embedding not centered: col sums %v", sums.Data)
		}
	}
}

func TestJointProbabilitiesValid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, _ := clusters(rng, 25, 3, 4)
	p := jointProbabilities(x, 8)
	var total float64
	for i := 0; i < p.Rows; i++ {
		if p.At(i, i) != 0 {
			t.Fatal("diagonal not zero")
		}
		for j := 0; j < p.Cols; j++ {
			v := p.At(i, j)
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("invalid probability %v", v)
			}
			if math.Abs(p.At(i, j)-p.At(j, i)) > 1e-15 {
				t.Fatal("P not symmetric")
			}
			total += v
		}
	}
	// Sums to ~1 (up to the 1e-12 floor terms).
	if math.Abs(total-1) > 1e-3 {
		t.Fatalf("P sums to %v", total)
	}
}

func TestPerplexityBinarySearchHitsTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, _ := clusters(rng, 50, 1, 4) // single blob: all bandwidths solvable
	d := pairwiseSqDist(x)
	target := 12.0
	logU := math.Log(target)
	// Replicate one binary search and verify entropy convergence.
	beta, betaMin, betaMax := 1.0, math.Inf(-1), math.Inf(1)
	var h float64
	for iter := 0; iter < 64; iter++ {
		row := condProb(d.Row(0), 0, beta)
		h = entropy(row)
		diff := h - logU
		if math.Abs(diff) < 1e-5 {
			break
		}
		if diff > 0 {
			betaMin = beta
			if math.IsInf(betaMax, 1) {
				beta *= 2
			} else {
				beta = (beta + betaMax) / 2
			}
		} else {
			betaMax = beta
			if math.IsInf(betaMin, -1) {
				beta /= 2
			} else {
				beta = (beta + betaMin) / 2
			}
		}
	}
	if math.Abs(math.Exp(h)-target) > 0.1 {
		t.Fatalf("achieved perplexity %.2f want %.2f", math.Exp(h), target)
	}
}

func TestKNNPurityBounds(t *testing.T) {
	y := tensor.FromRows([][]float64{{0, 0}, {0.1, 0}, {10, 10}, {10.1, 10}})
	labels := []string{"a", "a", "b", "b"}
	if p := KNNPurity(y, labels, 1); p != 1 {
		t.Fatalf("perfect purity = %v", p)
	}
	mixed := []string{"a", "b", "a", "b"}
	if p := KNNPurity(y, mixed, 1); p != 0 {
		t.Fatalf("anti-purity = %v", p)
	}
	if KNNPurity(tensor.New(0, 2), nil, 3) != 0 {
		t.Fatal("empty purity")
	}
}
