package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Record(Event{Kind: EvPlace})
	if r.Len() != 0 || r.Total() != 0 || r.Dropped() != 0 {
		t.Fatal("nil recorder not empty")
	}
	if r.Events() != nil || r.JobTrace(1) != nil {
		t.Fatal("nil recorder returned events")
	}
}

func TestRecorderOverwriteOldest(t *testing.T) {
	r := NewRecorder(4)
	for i := 1; i <= 6; i++ {
		r.Record(Event{Kind: EvEnqueue, Job: uint64(i)})
	}
	if r.Total() != 6 || r.Len() != 4 || r.Dropped() != 2 {
		t.Fatalf("total=%d len=%d dropped=%d", r.Total(), r.Len(), r.Dropped())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("events len = %d", len(evs))
	}
	for i, e := range evs {
		if e.Job != uint64(i+3) {
			t.Fatalf("event %d job = %d, want %d (oldest overwritten)", i, e.Job, i+3)
		}
		if i > 0 && (evs[i].Seq <= evs[i-1].Seq || evs[i].T < evs[i-1].T) {
			t.Fatal("events not in chronological order")
		}
	}
}

func TestRecorderJobTraceAndRecent(t *testing.T) {
	r := NewRecorder(64)
	r.Record(Event{Kind: EvEnqueue, Job: 1})
	r.Record(Event{Kind: EvEnqueue, Job: 2})
	r.Record(Event{Kind: EvPlace, Job: 1, Platform: 3})
	r.Record(Event{Kind: EvComplete, Job: 1, Platform: 3})
	tr := r.JobTrace(1)
	if len(tr) != 3 || tr[0].Kind != EvEnqueue || tr[1].Kind != EvPlace || tr[2].Kind != EvComplete {
		t.Fatalf("job trace wrong: %+v", tr)
	}
	rc := r.Recent(2)
	if len(rc) != 2 || rc[1].Kind != EvComplete {
		t.Fatalf("recent wrong: %+v", rc)
	}
	if got := r.Recent(100); len(got) != 4 {
		t.Fatalf("recent(100) len = %d", len(got))
	}
}

func TestRecorderDefaultCapacity(t *testing.T) {
	r := NewRecorder(0)
	if len(r.ring) != DefaultTraceDepth {
		t.Fatalf("default capacity = %d", len(r.ring))
	}
}

// TestRecorderConcurrent hammers Record from many goroutines while readers
// snapshot; run under -race this pins the locking protocol.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(256)
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Record(Event{Kind: EvPlace, Job: uint64(g), Platform: int32(i % 4)})
				if i%100 == 0 {
					r.JobTrace(uint64(g))
					r.Recent(16)
				}
			}
		}(g)
	}
	wg.Wait()
	if r.Total() != goroutines*per {
		t.Fatalf("total = %d, want %d", r.Total(), goroutines*per)
	}
	evs := r.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatal("sequence numbers not dense")
		}
	}
}

func TestReasonRoundTrip(t *testing.T) {
	for _, s := range []string{"admission", "no-healthy-platform", "capacity", "infeasible", "commit-conflict"} {
		if got := ParseReason(s).String(); got != s {
			t.Fatalf("round trip %q -> %q", s, got)
		}
	}
	if ParseReason("bogus") != ReasonNone || ParseReason("") != ReasonNone {
		t.Fatal("unknown reason not ReasonNone")
	}
}

func TestChromeTraceSpans(t *testing.T) {
	evs := []Event{
		{Kind: EvEnqueue, Job: 1, T: 0},
		{Kind: EvPlace, Job: 1, ID: 9, Platform: 2, Version: 5, T: 1000},
		{Kind: EvConflict, Job: 2, Platform: 1, N: 3, T: 1500},
		{Kind: EvComplete, Job: 1, Platform: 2, T: 4000},
		{Kind: EvShed, Job: 2, Reason: ReasonConflict, T: 5000},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, evs); err != nil {
		t.Fatal(err)
	}
	var tr ChromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("trace output not valid JSON: %v", err)
	}
	var spans, sheds int
	for _, e := range tr.TraceEvents {
		switch {
		case e.Ph == "X":
			spans++
			if e.Name != "run@p2" || e.TID != 1 || e.Dur <= 0 {
				t.Fatalf("bad span: %+v", e)
			}
		case e.Name == "shed/commit-conflict":
			sheds++
		}
	}
	if spans != 1 || sheds != 1 {
		t.Fatalf("spans=%d sheds=%d", spans, sheds)
	}
}
