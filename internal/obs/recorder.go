package obs

import (
	"sync"
	"time"
)

// EventKind is a typed lifecycle event in a job's journey through the
// placement stack.
type EventKind uint8

const (
	EvEnqueue EventKind = 1 + iota // job arrived / admitted to a wave
	EvScore                        // a wave batch was scored (N = wave size)
	EvReserve                      // optimistic slot reservation committed (replica path)
	EvConflict                     // CAS reservation lost, retrying (N = attempt)
	EvPlace                        // job committed to a platform
	EvComplete                     // job finished and released its slot
	EvOrphan                       // platform failed under a resident job
	EvReadmit                      // platform re-admitted after recovery/probation
	EvRetry                        // queued retry attempt (N = attempt)
	EvShed                         // job rejected (Reason says why)
)

var kindNames = [...]string{
	EvEnqueue:  "enqueue",
	EvScore:    "score",
	EvReserve:  "reserve",
	EvConflict: "conflict",
	EvPlace:    "place",
	EvComplete: "complete",
	EvOrphan:   "orphan",
	EvReadmit:  "readmit",
	EvRetry:    "retry",
	EvShed:     "shed",
}

func (k EventKind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "unknown"
}

// Reason is a compact encoding of the scheduler's rejection reason strings
// so events stay allocation-free at record time.
type Reason uint8

const (
	ReasonNone Reason = iota
	ReasonAdmission
	ReasonNoHealthy
	ReasonCapacity
	ReasonInfeasible
	ReasonConflict
)

var reasonNames = [...]string{
	ReasonNone:       "",
	ReasonAdmission:  "admission",
	ReasonNoHealthy:  "no-healthy-platform",
	ReasonCapacity:   "capacity",
	ReasonInfeasible: "infeasible",
	ReasonConflict:   "commit-conflict",
}

func (r Reason) String() string {
	if int(r) < len(reasonNames) {
		return reasonNames[r]
	}
	return "unknown"
}

// ParseReason maps a scheduler reason string back to its compact code.
// Unknown strings (including "") map to ReasonNone.
func ParseReason(s string) Reason {
	for i, n := range reasonNames {
		if i != 0 && n == s {
			return Reason(i)
		}
	}
	return ReasonNone
}

// Event is one flight-recorder entry. Job is the caller-chosen tracking
// key — the scheduler JobID on the serving path, the 1-based arrival index
// on the schedsim stream path. ID carries the scheduler JobID when it is
// known and distinct from the tracking key. Version is the predictor
// snapshot version at record time, Platform is -1 when the event is not
// platform-specific, and N is contextual (wave size for score, attempt
// number for conflict/retry).
type Event struct {
	Seq      uint64        // total order within the recorder
	T        time.Duration // monotonic time since the recorder's epoch
	Job      uint64
	ID       uint64
	Version  uint64
	Kind     EventKind
	Reason   Reason
	Platform int32
	N        int32
	// Cached is, on EvScore events from the memoized wave path, how many
	// of the chunk's distinct column scores were served from the
	// cross-wave score cache instead of the predictor; 0 elsewhere.
	Cached int32
}

// Recorder is a bounded ring of Events with overwrite-oldest semantics.
// Record is safe for concurrent use and allocation-free: each event is
// written in place into a pre-sized slot under a short mutex. A nil
// *Recorder drops events with a single branch and no time syscall.
type Recorder struct {
	epoch time.Time

	mu   sync.Mutex
	ring []Event
	next uint64 // total events ever recorded; head slot = next % cap
}

// DefaultTraceDepth is the ring capacity used when a caller passes a
// non-positive depth.
const DefaultTraceDepth = 4096

// NewRecorder builds a recorder holding the most recent capacity events.
// Non-positive capacities fall back to DefaultTraceDepth.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultTraceDepth
	}
	return &Recorder{
		epoch: time.Now(),
		ring:  make([]Event, capacity),
	}
}

// Epoch returns the wall-clock instant event T durations are relative to.
func (r *Recorder) Epoch() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.epoch
}

// Record stamps e with a sequence number and monotonic time and stores it,
// overwriting the oldest event when the ring is full. Nil-safe.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	// time.Since uses the monotonic clock carried by epoch; taken outside
	// the lock so the critical section is a few stores.
	t := time.Since(r.epoch)
	r.mu.Lock()
	e.Seq = r.next
	e.T = t
	r.ring[r.next%uint64(len(r.ring))] = e
	r.next++
	r.mu.Unlock()
}

// Total returns the number of events ever recorded, including overwritten
// ones.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Len returns the number of events currently held.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return int(min(r.next, uint64(len(r.ring))))
}

// Dropped returns how many events have been overwritten.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next <= uint64(len(r.ring)) {
		return 0
	}
	return r.next - uint64(len(r.ring))
}

// snapshotLocked appends the retained events in chronological order.
func (r *Recorder) snapshotLocked(dst []Event) []Event {
	n := min(r.next, uint64(len(r.ring)))
	start := r.next - n
	for i := uint64(0); i < n; i++ {
		dst = append(dst, r.ring[(start+i)%uint64(len(r.ring))])
	}
	return dst
}

// Events returns a chronological copy of every retained event.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapshotLocked(make([]Event, 0, min(r.next, uint64(len(r.ring)))))
}

// Recent returns the most recent n retained events in chronological order.
func (r *Recorder) Recent(n int) []Event {
	evs := r.Events()
	if n < len(evs) {
		evs = evs[len(evs)-n:]
	}
	return evs
}

// JobTrace returns every retained event for the given tracking key in
// chronological order. Cost is one O(capacity) scan under the lock — the
// ring is not indexed by job; it is a debugging surface, not a hot path.
func (r *Recorder) JobTrace(job uint64) []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	all := r.snapshotLocked(nil)
	r.mu.Unlock()
	out := all[:0]
	for _, e := range all {
		if e.Job == job {
			out = append(out, e)
		}
	}
	return out
}
