package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram("x_seconds", "help", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 106.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	var b strings.Builder
	h.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP x_seconds help",
		"# TYPE x_seconds histogram",
		`x_seconds_bucket{le="1"} 2`, // 0.5 and the boundary value 1
		`x_seconds_bucket{le="2"} 3`,
		`x_seconds_bucket{le="4"} 4`,
		`x_seconds_bucket{le="+Inf"} 5`,
		"x_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	h.ObserveSince(time.Now())
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram not empty")
	}
	var b strings.Builder
	h.WritePrometheus(&b)
	if b.Len() != 0 {
		t.Fatal("nil histogram wrote exposition")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram("y_seconds", "help", LatencyBuckets())
	const goroutines, per = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(1e-6 * float64(1+(g*per+i)%1000))
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("count = %d, want %d", h.Count(), goroutines*per)
	}
}

func TestLadders(t *testing.T) {
	for _, tc := range []struct {
		name   string
		ladder []float64
	}{{"latency", LatencyBuckets()}, {"size", SizeBuckets()}} {
		if len(tc.ladder) == 0 {
			t.Fatalf("%s ladder empty", tc.name)
		}
		for i := 1; i < len(tc.ladder); i++ {
			if tc.ladder[i] <= tc.ladder[i-1] {
				t.Fatalf("%s ladder not ascending at %d", tc.name, i)
			}
		}
	}
	lat := LatencyBuckets()
	if lat[0] != 1e-6 || lat[len(lat)-1] < 8 {
		t.Fatalf("latency ladder range wrong: [%g, %g]", lat[0], lat[len(lat)-1])
	}
}

// TestDisabledObsZeroAlloc pins the disabled path: observing into a nil
// histogram and recording into a nil recorder must not allocate.
func TestDisabledObsZeroAlloc(t *testing.T) {
	var h *Histogram
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(1.5)
		r.Record(Event{Kind: EvPlace, Job: 7, Platform: 3})
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocated %v allocs/op, want 0", allocs)
	}
}

// TestEnabledObsZeroAlloc pins the enabled steady state: a live histogram
// observation and a live ring record are also allocation-free.
func TestEnabledObsZeroAlloc(t *testing.T) {
	h := NewHistogram("z_seconds", "help", LatencyBuckets())
	r := NewRecorder(128)
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(1.5e-3)
		r.Record(Event{Kind: EvPlace, Job: 7, Platform: 3})
	})
	if allocs != 0 {
		t.Fatalf("enabled path allocated %v allocs/op, want 0", allocs)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram("b_seconds", "help", LatencyBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-6)
	}
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-6)
	}
}
