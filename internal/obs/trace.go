package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// TraceEvent is one entry in Chrome trace-event format (the JSON consumed
// by chrome://tracing and Perfetto). Instant events use Ph "i"; spans use
// Ph "X" with Dur. TS and Dur are microseconds.
type TraceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  uint64         `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the top-level trace file object.
type ChromeTrace struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// BuildChromeTrace converts recorder events into a Chrome trace: every
// event becomes a thread-scoped instant on tid = Job, and each
// place→(complete|orphan) pair on the same tracking key additionally
// becomes an "X" span named run@p<platform> so a job's residency reads as
// a bar in the timeline.
func BuildChromeTrace(events []Event) ChromeTrace {
	out := make([]TraceEvent, 0, len(events)+len(events)/4)
	// Open residency per tracking key: place time + platform.
	type open struct {
		ts       float64
		platform int32
	}
	opens := make(map[uint64]open)
	for _, e := range events {
		ts := float64(e.T.Microseconds())
		name := e.Kind.String()
		if e.Kind == EvShed && e.Reason != ReasonNone {
			name = "shed/" + e.Reason.String()
		}
		args := map[string]any{}
		if e.Platform >= 0 {
			args["platform"] = e.Platform
		}
		if e.Version != 0 {
			args["snapshot_version"] = e.Version
		}
		if e.ID != 0 {
			args["id"] = e.ID
		}
		if e.N != 0 {
			args["n"] = e.N
		}
		if len(args) == 0 {
			args = nil
		}
		out = append(out, TraceEvent{
			Name: name, Ph: "i", TS: ts, PID: 1, TID: e.Job, S: "t", Args: args,
		})
		switch e.Kind {
		case EvPlace:
			opens[e.Job] = open{ts: ts, platform: e.Platform}
		case EvComplete, EvOrphan:
			if o, ok := opens[e.Job]; ok {
				delete(opens, e.Job)
				out = append(out, TraceEvent{
					Name: fmt.Sprintf("run@p%d", o.platform),
					Ph:   "X", TS: o.ts, Dur: ts - o.ts, PID: 1, TID: e.Job,
				})
			}
		}
	}
	return ChromeTrace{TraceEvents: out, DisplayTimeUnit: "ms"}
}

// WriteChromeTrace serializes events as an indented Chrome trace file.
func WriteChromeTrace(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(BuildChromeTrace(events))
}
