// Package obs is a zero-dependency observability core: lock-free
// log-bucketed latency histograms with Prometheus text exposition, and a
// bounded per-job flight recorder of typed lifecycle events. Every entry
// point is nil-safe so call sites can thread a possibly-nil handle through
// hot paths: the disabled path is a single nil check, no allocation, no
// time syscall.
package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-ladder latency/size histogram safe for concurrent
// Observe from any number of goroutines. Buckets are stored non-cumulative
// (one atomic add per observation); the cumulative Prometheus view is
// computed at exposition time. A nil *Histogram ignores observations.
type Histogram struct {
	name  string
	help  string
	upper []float64 // ascending upper bounds; +Inf is implicit

	buckets []atomic.Uint64 // len(upper)+1; last slot is the +Inf overflow
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits of the running sum (CAS loop)
}

// NewHistogram builds a histogram with the given ascending bucket upper
// bounds. The +Inf bucket is implicit. Panics on an empty or non-ascending
// ladder — ladders are compile-time constants, not user input.
func NewHistogram(name, help string, upper []float64) *Histogram {
	if len(upper) == 0 {
		panic("obs: empty bucket ladder")
	}
	for i := 1; i < len(upper); i++ {
		if upper[i] <= upper[i-1] {
			panic("obs: bucket ladder not ascending")
		}
	}
	ladder := make([]float64, len(upper))
	copy(ladder, upper)
	return &Histogram{
		name:    name,
		help:    help,
		upper:   ladder,
		buckets: make([]atomic.Uint64, len(ladder)+1),
	}
}

// LatencyBuckets is a log2 ladder from 1µs to ~8.4s (24 buckets + Inf),
// wide enough to span sub-chunk lock holds and multi-second Observe
// flushes with ~2x relative resolution.
func LatencyBuckets() []float64 {
	b := make([]float64, 24)
	v := 1e-6
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}

// SizeBuckets is a power-of-two count ladder 1..4096 for wave-size
// distributions.
func SizeBuckets() []float64 {
	b := make([]float64, 13)
	v := 1.0
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}

// Observe records one value. Nil-safe; NaN observations are dropped.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	// Binary search for the first upper bound >= v; the ladder is short
	// (<=24) so this is a handful of well-predicted branches.
	lo, hi := 0, len(h.upper)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.upper[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.buckets[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the elapsed seconds since start. Nil-safe, but the
// caller should guard the time.Now() that produced start when the
// histogram may be nil — see the instrumentation pattern in internal/sched.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Name returns the metric family name.
func (h *Histogram) Name() string { return h.name }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the running sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// WritePrometheus emits the family in Prometheus text exposition format
// 0.0.4: HELP, TYPE, cumulative _bucket samples (including +Inf), _sum,
// _count. Concurrent observations may land mid-write; the emitted buckets
// are still monotone because each bucket is read once, low to high, and
// the +Inf bucket is the running total of the values actually read.
func (h *Histogram) WritePrometheus(w io.Writer) {
	if h == nil {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name)
	var cum uint64
	for i, ub := range h.upper {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, formatBound(ub), cum)
	}
	cum += h.buckets[len(h.upper)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", h.name, h.Sum())
	fmt.Fprintf(w, "%s_count %d\n", h.name, cum)
}

func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
