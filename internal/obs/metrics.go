package obs

// SchedMetrics bundles the placement-path histogram families so one
// pointer threads through sched.Config. A nil *SchedMetrics (or any nil
// member) disables recording at that site with a single branch.
type SchedMetrics struct {
	// ScoreBatch is the latency of one batched predictor scoring call
	// (seconds).
	ScoreBatch *Histogram
	// WavePlace is the end-to-end latency of one PlaceAll wave (seconds).
	WavePlace *Histogram
	// ChunkHold is the scheduler-lock hold time of one wave chunk
	// (seconds), lock-acquired to lock-released.
	ChunkHold *Histogram
	// WaveSize is the distribution of PlaceAll wave sizes (jobs).
	WaveSize *Histogram
	// CacheLookup is the latency of one score-cache column lookup
	// (seconds), recorded only on the memoized wave path.
	CacheLookup *Histogram
}

// NewSchedMetrics builds the placement histogram set with the given family
// name prefix (e.g. "pitot_place_").
func NewSchedMetrics(prefix string) *SchedMetrics {
	return &SchedMetrics{
		ScoreBatch: NewHistogram(prefix+"score_batch_seconds",
			"Latency of one batched predictor scoring call.", LatencyBuckets()),
		WavePlace: NewHistogram(prefix+"wave_seconds",
			"End-to-end latency of one placement wave.", LatencyBuckets()),
		ChunkHold: NewHistogram(prefix+"chunk_hold_seconds",
			"Scheduler lock hold time per wave chunk.", LatencyBuckets()),
		WaveSize: NewHistogram(prefix+"wave_jobs",
			"Distribution of placement wave sizes.", SizeBuckets()),
		CacheLookup: NewHistogram(prefix+"score_cache_lookup_seconds",
			"Latency of one score-cache column lookup.", LatencyBuckets()),
	}
}
