// Quickstart: generate a dataset, train Pitot, and query runtime estimates
// and conformal bounds through the public API.
package main

import (
	"fmt"
	"log"

	pitot "repro"
)

func main() {
	log.SetFlags(0)

	// 1. Generate a small synthetic cluster dataset (the substitute for
	//    the paper's physical WebAssembly testbed).
	ds := pitot.GenerateDataset(pitot.DatasetConfig{
		Seed: 7, NumWorkloads: 40, MaxDevices: 6, SetsPerDegree: 20,
	})
	fmt.Printf("dataset: %d workloads x %d platforms, %d observations\n",
		ds.NumWorkloads(), ds.NumPlatforms(), len(ds.Obs))

	// 2. Train Pitot with conformal bounds enabled.
	cfg := pitot.DefaultModelConfig(7)
	cfg.Steps = 800 // quick demo; raise for accuracy
	pred, err := pitot.Train(ds, pitot.Options{Seed: 7, Model: &cfg, EnableBounds: true})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Estimate the runtime of a workload on a platform, alone and with
	//    two interfering workloads.
	w, p := 0, 0
	alone := pred.Estimate(w, p, nil)
	crowded := pred.Estimate(w, p, []int{1, 2})
	fmt.Printf("\n%s on %s:\n", ds.WorkloadNames[w], ds.PlatformNames[p])
	fmt.Printf("  estimated runtime alone:            %.4fs\n", alone)
	fmt.Printf("  estimated with 2 interferers:       %.4fs (%.2fx slowdown)\n",
		crowded, crowded/alone)

	// 4. Ask for a runtime budget sufficient with 95% probability.
	bound, err := pred.Bound(w, p, []int{1, 2}, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  95%%-sufficient runtime budget:      %.4fs\n", bound)

	// 5. Compare against a real measurement from the dataset.
	for _, o := range ds.Obs {
		if o.Workload == w && o.Platform == p && o.Degree() == 0 {
			fmt.Printf("  measured (isolation, for reference): %.4fs\n", o.Seconds)
			break
		}
	}
}
