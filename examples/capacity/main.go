// Capacity planning: choose the cheapest device class that meets a latency
// SLO for a given workload mix — the "specifying future hardware platforms"
// use case from the paper's introduction (§1).
//
// For each candidate platform the planner asks Pitot for conformal runtime
// bounds of every workload in the mix, assuming the rest of the mix runs
// concurrently, and reports the cheapest platform whose worst-case bound
// meets the SLO.
package main

import (
	"fmt"
	"log"
	"math"
	"sort"
	"strings"

	pitot "repro"
)

// deviceCost is a rough unit-cost table by device-class keyword.
var deviceCost = []struct {
	keyword string
	cost    float64
}{
	{"Nucleo", 15}, {"RPi", 45}, {"Potato", 35}, {"Renegade", 40},
	{"Orange", 35}, {"Banana", 45}, {"Odroid", 50}, {"Rock", 70},
	{"i.MX", 60}, {"VF2", 65}, {"Compute Stick", 90}, {"Mini PC", 150},
	{"NUC", 350}, {"EliteDesk", 450}, {"ITX", 300},
}

func costOf(platformName string) float64 {
	for _, dc := range deviceCost {
		if strings.Contains(platformName, dc.keyword) {
			return dc.cost
		}
	}
	return 200
}

func main() {
	log.SetFlags(0)

	ds := pitot.GenerateDataset(pitot.DatasetConfig{
		Seed: 33, NumWorkloads: 36, MaxDevices: 10, SetsPerDegree: 25,
	})
	cfg := pitot.DefaultModelConfig(33)
	cfg.Steps = 1000
	pred, err := pitot.Train(ds, pitot.Options{Seed: 33, Model: &cfg, EnableBounds: true})
	if err != nil {
		log.Fatal(err)
	}

	// The application: three workloads that will run together on one box.
	mix := []int{2, 9, 16}
	const slo = 4.0  // seconds per task
	const eps = 0.05 // per-task violation budget

	fmt.Printf("workload mix: ")
	for _, w := range mix {
		fmt.Printf("%s ", ds.WorkloadNames[w])
	}
	fmt.Printf("\nSLO: every task finishes within %.1fs with ≥%.0f%% probability\n\n", slo, 100*(1-eps))

	type result struct {
		platform int
		worst    float64
		cost     float64
	}
	// Every (platform, mix member) bound in one batched call.
	var qs []pitot.Query
	for p := 0; p < ds.NumPlatforms(); p++ {
		for i, w := range mix {
			others := make([]int, 0, len(mix)-1)
			for j, o := range mix {
				if j != i {
					others = append(others, o)
				}
			}
			qs = append(qs, pitot.Query{Workload: w, Platform: p, Interferers: others})
		}
	}
	bounds, err := pred.BoundBatch(qs, eps)
	if err != nil {
		log.Fatal(err)
	}
	var feasible, infeasible []result
	for p := 0; p < ds.NumPlatforms(); p++ {
		worst := 0.0
		ok := true
		for i := range mix {
			b := bounds[p*len(mix)+i]
			if math.IsInf(b, 1) {
				ok = false
				break
			}
			if b > worst {
				worst = b
			}
		}
		r := result{p, worst, costOf(ds.PlatformNames[p])}
		if ok && worst <= slo {
			feasible = append(feasible, r)
		} else {
			infeasible = append(infeasible, r)
		}
	}
	sort.Slice(feasible, func(i, j int) bool { return feasible[i].cost < feasible[j].cost })

	if len(feasible) == 0 {
		fmt.Println("no platform meets the SLO; consider splitting the mix")
		return
	}
	fmt.Printf("%d/%d platforms meet the SLO; cheapest options:\n",
		len(feasible), ds.NumPlatforms())
	for i, r := range feasible {
		if i == 5 {
			break
		}
		fmt.Printf("  $%-4.0f %-32s worst-case bound %.2fs\n",
			r.cost, ds.PlatformNames[r.platform], r.worst)
	}
	best := feasible[0]
	fmt.Printf("\nrecommendation: %s ($%.0f)\n", ds.PlatformNames[best.platform], best.cost)
}
