// Serving demonstrates the snapshot-isolated serving layer: a trained
// predictor behind the micro-batching server, hammered by concurrent
// clients while online learning publishes new model snapshots mid-flight.
//
//	go run ./examples/serving
//
// Things to watch in the output: reads never block (throughput stays flat
// across the Observe), the snapshot version ticks up without any reader
// seeing a torn model, and the per-snapshot metrics show which traffic was
// served by which model version.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	pitot "repro"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	fmt.Println("== Pitot serving demo: snapshot-isolated concurrent serving ==")

	ds := pitot.GenerateDataset(pitot.DatasetConfig{
		Seed: 7, NumWorkloads: 30, MaxDevices: 5, SetsPerDegree: 12,
	})
	cfg := pitot.DefaultModelConfig(7)
	cfg.Hidden = 32
	cfg.EmbeddingDim = 16
	cfg.Steps = 500
	cfg.EvalEvery = 125
	fmt.Printf("training on %d observations (%d workloads x %d platforms)...\n",
		len(ds.Obs), ds.NumWorkloads(), ds.NumPlatforms())
	pred, err := pitot.Train(ds, pitot.Options{Seed: 7, Model: &cfg, EnableBounds: true})
	if err != nil {
		log.Fatal(err)
	}

	srv := serve.New(pred, serve.Config{MaxBatch: 256, Window: 100 * time.Microsecond})
	defer srv.Close()

	const (
		clients  = 8
		duration = 2 * time.Second
	)
	var (
		served   atomic.Int64
		stop     = make(chan struct{})
		wg       sync.WaitGroup
		baseW    = 3
		baseP    = 1
		baseline = pred.Estimate(baseW, baseP, nil)
	)
	fmt.Printf("serving with %d concurrent clients for %v; baseline Estimate(%d,%d) = %.4fs\n",
		clients, duration, baseW, baseP, baseline)

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			ctx := context.Background()
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := pitot.Query{
					Workload:    rng.Intn(ds.NumWorkloads()),
					Platform:    rng.Intn(ds.NumPlatforms()),
					Interferers: []int{rng.Intn(ds.NumWorkloads())},
				}
				var err error
				if rng.Intn(4) == 0 {
					_, err = srv.Bound(ctx, q, 0.1)
				} else {
					_, err = srv.Estimate(ctx, q)
				}
				if err != nil {
					log.Fatalf("client %d: %v", c, err)
				}
				served.Add(1)
			}
		}(c)
	}

	// Mid-serving, feed drifted measurements: platform baseP got 2x slower
	// for workload baseW. Observe fine-tunes a private clone and publishes
	// a new snapshot; the clients above never block on it.
	time.Sleep(duration / 3)
	fmt.Printf("... t=%v: Observe(30 drifted measurements) while serving (snapshot v%d)\n",
		duration/3, pred.Version())
	obsStart := time.Now()
	var obs []pitot.Observation
	for i := 0; i < 30; i++ {
		obs = append(obs, pitot.Observation{Workload: baseW, Platform: baseP, Seconds: baseline * 2})
	}
	if err := srv.Observe(obs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("... observe done in %v: snapshot v%d published\n",
		time.Since(obsStart).Round(time.Millisecond), pred.Version())

	time.Sleep(duration - duration/3)
	close(stop)
	wg.Wait()

	total := served.Load()
	fmt.Printf("\nserved %d predictions in %v (%.0f/s) across %d clients\n",
		total, duration, float64(total)/duration.Seconds(), clients)
	fmt.Printf("estimate after drift: %.4fs (was %.4fs — the new snapshot adapted)\n",
		pred.Estimate(baseW, baseP, nil), baseline)

	m := srv.Metrics()
	fmt.Printf("\nmetrics: requests=%d rejected=%d inline=%d idle=%d full=%d timeout=%d\n",
		m.Requests, m.Rejected, m.InlineFlushes, m.IdleFlushes, m.FullFlushes, m.TimeoutFlushes)
	for _, sm := range m.PerSnapshot {
		fmt.Printf("  snapshot v%d: %d batches, %d queries, mean batch %.1f, max %d\n",
			sm.Version, sm.Batches, sm.Queries, sm.MeanBatch, sm.MaxBatchSize)
	}
}
