// Orchestrator: deadline-aware workload placement across a heterogeneous
// edge cluster — the paper's motivating application (§1).
//
// A stream of jobs arrives, each with a completion deadline. For every job
// the orchestrator asks Pitot for a conformal runtime bound on each
// platform given the workloads already placed there, and picks the least
// loaded platform whose bound meets the deadline. Using the bound (rather
// than the mean estimate) gives a per-placement probabilistic guarantee:
// the job exceeds its budget with probability at most eps.
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	pitot "repro"
)

const eps = 0.1 // acceptable per-job deadline-miss probability

func main() {
	log.SetFlags(0)

	ds := pitot.GenerateDataset(pitot.DatasetConfig{
		Seed: 21, NumWorkloads: 40, MaxDevices: 8, SetsPerDegree: 25,
	})
	cfg := pitot.DefaultModelConfig(21)
	cfg.Steps = 1000
	pred, err := pitot.Train(ds, pitot.Options{Seed: 21, Model: &cfg, EnableBounds: true})
	if err != nil {
		log.Fatal(err)
	}

	// Jobs: workload index + deadline in seconds.
	jobs := []struct {
		w        int
		deadline float64
	}{
		{0, 2.0}, {3, 5.0}, {5, 1.0}, {8, 10.0}, {11, 3.0},
		{14, 2.5}, {17, 8.0}, {20, 1.5}, {23, 4.0}, {26, 6.0},
	}

	placed := make(map[int][]int) // platform -> workloads running there
	fmt.Printf("placing %d jobs across %d platforms (deadline-miss budget %.0f%%)\n\n",
		len(jobs), ds.NumPlatforms(), 100*eps)

	var missed int
	for _, job := range jobs {
		type cand struct {
			platform int
			bound    float64
			load     int
		}
		// One batched bound call covers every candidate platform; queries
		// share the per-platform resident sets, which BoundBatch exploits.
		var qs []pitot.Query
		for p := 0; p < ds.NumPlatforms(); p++ {
			if len(placed[p]) >= 3 {
				continue // capacity: at most 4 co-located workloads
			}
			qs = append(qs, pitot.Query{Workload: job.w, Platform: p, Interferers: placed[p]})
		}
		bounds, err := pred.BoundBatch(qs, eps)
		if err != nil {
			log.Fatal(err)
		}
		var cands []cand
		for i, b := range bounds {
			if math.IsInf(b, 1) || b > job.deadline {
				continue
			}
			cands = append(cands, cand{qs[i].Platform, b, len(qs[i].Interferers)})
		}
		if len(cands) == 0 {
			fmt.Printf("job %-14s deadline %5.1fs: NO feasible placement\n",
				ds.WorkloadNames[job.w], job.deadline)
			missed++
			continue
		}
		// Least-loaded platform first; break ties by tightest bound (keep
		// fast platforms free for hard deadlines).
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].load != cands[j].load {
				return cands[i].load < cands[j].load
			}
			return cands[i].bound > cands[j].bound
		})
		best := cands[0]
		placed[best.platform] = append(placed[best.platform], job.w)
		fmt.Printf("job %-14s deadline %5.1fs -> %-28s bound %.3fs (co-located: %d)\n",
			ds.WorkloadNames[job.w], job.deadline,
			ds.PlatformNames[best.platform], best.bound, best.load)
	}

	fmt.Printf("\nplaced %d/%d jobs; final load:\n", len(jobs)-missed, len(jobs))
	var ps []int
	for p := range placed {
		ps = append(ps, p)
	}
	sort.Ints(ps)
	for _, p := range ps {
		fmt.Printf("  %-28s %d workload(s)\n", ds.PlatformNames[p], len(placed[p]))
	}
}
