// Orchestrator: deadline-aware workload placement across a heterogeneous
// edge cluster — the paper's motivating application (§1), on the
// event-driven orchestration engine.
//
// A wave of jobs arrives, each with a completion deadline. The scheduler
// scores every candidate platform for the whole wave in one batched
// conformal-bound call (a per-placement probabilistic guarantee: each job
// exceeds its budget with probability at most eps), places the wave, and
// then the cluster evolves: completed jobs free their colocation slots,
// their measured runtimes are fed back into the predictor (Observe), and
// a second wave is placed against the updated snapshot — the full
// predict → place → measure → observe loop.
package main

import (
	"fmt"
	"log"
	"math/rand"

	pitot "repro"
	"repro/internal/sched"
	"repro/internal/wasmcluster"
)

const eps = 0.1 // acceptable per-job deadline-miss probability

func main() {
	log.SetFlags(0)

	clusterCfg := pitot.DatasetConfig{
		Seed: 21, NumWorkloads: 40, MaxDevices: 8, SetsPerDegree: 25,
	}
	cluster := wasmcluster.New(clusterCfg)
	ds := cluster.Generate()
	cfg := pitot.DefaultModelConfig(21)
	cfg.Steps = 1000
	pred, err := pitot.Train(ds, pitot.Options{Seed: 21, Model: &cfg, EnableBounds: true})
	if err != nil {
		log.Fatal(err)
	}

	s, err := sched.New(sched.Config{
		NumPlatforms:  ds.NumPlatforms(),
		MaxColocation: 4,
		Strategy:      sched.BestFit{},
	}, sched.BoundPolicy{Eps: eps}, pred)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine: batch scoring %v, strategy best-fit, deadline-miss budget %.0f%%\n\n",
		s.Batched(), 100*eps)

	wave1 := []sched.Job{
		{Workload: 0, Deadline: 2.0}, {Workload: 3, Deadline: 5.0},
		{Workload: 5, Deadline: 1.0}, {Workload: 8, Deadline: 10.0},
		{Workload: 11, Deadline: 3.0}, {Workload: 14, Deadline: 2.5},
		{Workload: 17, Deadline: 8.0}, {Workload: 20, Deadline: 1.5},
	}
	fmt.Printf("wave 1: placing %d jobs across %d platforms (one batched bound call)\n", len(wave1), ds.NumPlatforms())
	as := s.PlaceAll(wave1)
	report(ds, as)

	// The cluster runs: completed jobs free their slots and report their
	// measured runtimes back to the predictor.
	mrng := rand.New(rand.NewSource(99))
	var ms []sched.Measurement
	for _, a := range as {
		if !a.Placed() {
			continue
		}
		runtime := cluster.MeasureSeconds(mrng, a.Job.Workload, a.Platform, a.Interferers)
		ms = append(ms, sched.Measurement{
			Workload: a.Job.Workload, Platform: a.Platform,
			Interferers: a.Interferers, Seconds: runtime,
		})
		if err := s.Complete(a.ID); err != nil {
			log.Fatal(err)
		}
	}
	v0 := pred.Version()
	if err := pred.ObserveSeconds(ms); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncompleted %d jobs; fed %d measured runtimes back (snapshot v%d -> v%d)\n",
		len(ms), len(ms), v0, pred.Version())

	wave2 := []sched.Job{
		{Workload: 23, Deadline: 4.0}, {Workload: 26, Deadline: 6.0},
		{Workload: 5, Deadline: 1.2}, {Workload: 31, Deadline: 2.0},
	}
	fmt.Printf("\nwave 2: placing %d jobs against the updated snapshot (slots freed by completions)\n", len(wave2))
	report(ds, s.PlaceAll(wave2))
}

func report(ds *pitot.Dataset, as []sched.Assignment) {
	for _, a := range as {
		if !a.Placed() {
			fmt.Printf("  job %-14s deadline %5.1fs: NO feasible placement\n",
				ds.WorkloadNames[a.Job.Workload], a.Job.Deadline)
			continue
		}
		fmt.Printf("  job %-14s deadline %5.1fs -> %-28s bound %.3fs (co-located: %d)\n",
			ds.WorkloadNames[a.Job.Workload], a.Job.Deadline,
			ds.PlatformNames[a.Platform], a.Budget, len(a.Interferers))
	}
}
