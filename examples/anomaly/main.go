// Anomaly detection on learned embeddings: the paper's §5.4 observes that
// Pitot's workload embeddings cluster by behaviour, so distance in
// embedding space can flag workloads whose performance profile does not
// match their declared suite (e.g. a mislabeled or compromised benchmark).
//
// This example trains Pitot, computes each workload's distance to its
// suite centroid in embedding space, and flags outliers — including a
// deliberately mislabeled workload, which should rank near the top.
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	pitot "repro"
)

func main() {
	log.SetFlags(0)

	ds := pitot.GenerateDataset(pitot.DatasetConfig{
		Seed: 55, NumWorkloads: 48, MaxDevices: 8, SetsPerDegree: 20,
	})
	cfg := pitot.DefaultModelConfig(55)
	cfg.Steps = 1200
	pred, err := pitot.Train(ds, pitot.Options{Seed: 55, Model: &cfg})
	if err != nil {
		log.Fatal(err)
	}

	// Deliberately mislabel one workload: claim a libsodium crypto kernel
	// is a polybench numerical kernel.
	suites := append([]string(nil), ds.WorkloadSuites...)
	mislabeled := -1
	for i, s := range suites {
		if s == "libsodium" {
			suites[i] = "polybench"
			mislabeled = i
			break
		}
	}

	emb := pred.WorkloadEmbeddings()
	dim := len(emb[0])

	// Suite centroids in embedding space.
	centroids := map[string][]float64{}
	counts := map[string]int{}
	for i, s := range suites {
		c, ok := centroids[s]
		if !ok {
			c = make([]float64, dim)
			centroids[s] = c
		}
		for j, v := range emb[i] {
			c[j] += v
		}
		counts[s]++
	}
	for s, c := range centroids {
		for j := range c {
			c[j] /= float64(counts[s])
		}
	}

	// Anomaly score: the margin between the distance to the declared
	// suite's centroid and the distance to the nearest *other* suite's
	// centroid. Positive margin = some other suite explains this workload
	// better than its own label.
	distTo := func(i int, suite string) float64 {
		c := centroids[suite]
		var d float64
		for j, v := range emb[i] {
			diff := v - c[j]
			d += diff * diff
		}
		return math.Sqrt(d)
	}
	type score struct {
		w       int
		margin  float64
		nearest string
	}
	var scores []score
	for i := range emb {
		own := distTo(i, suites[i])
		bestOther, bestName := math.Inf(1), ""
		for s := range centroids {
			if s == suites[i] {
				continue
			}
			if d := distTo(i, s); d < bestOther {
				bestOther, bestName = d, s
			}
		}
		scores = append(scores, score{i, own - bestOther, bestName})
	}
	sort.Slice(scores, func(i, j int) bool { return scores[i].margin > scores[j].margin })

	fmt.Println("workloads better explained by another suite (margin > 0):")
	rankOfMislabeled := -1
	for rank, s := range scores {
		marker := ""
		if s.w == mislabeled {
			marker = "   <-- deliberately mislabeled"
			rankOfMislabeled = rank
		}
		if rank < 8 || s.w == mislabeled {
			fmt.Printf("  %2d. %-16s declared %-10s nearest %-10s margin %+.3f%s\n",
				rank+1, ds.WorkloadNames[s.w], suites[s.w], s.nearest, s.margin, marker)
		}
	}
	if mislabeled >= 0 {
		fmt.Printf("\nmislabeled workload ranked %d of %d by anomaly score\n",
			rankOfMislabeled+1, len(scores))
	}
}
